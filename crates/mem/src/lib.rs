//! Memory hierarchy for the Free Atomics simulator.
//!
//! Models the paper's Table-1 memory system: per-core private caches (L1D
//! backed by a private L2), a shared LLC, an **inclusive directory** with
//! finite capacity, and a pluggable crossbar interconnect ([`noc`]: ideal
//! or bandwidth-contended) — all driven by a deterministic event wheel the
//! interconnect owns.
//!
//! # Modeling approach: dataless coherence
//!
//! Data values live in a single [`fa_isa::interp::GuestMem`] backing store;
//! caches and the directory carry *tags, permissions and locks only*. A load
//! reads the backing store at the cycle its response is delivered (its
//! *perform* time); a store writes the backing store the cycle it drains from
//! the store buffer with write permission. Memory-order visibility therefore
//! equals perform order, which is exactly the operational definition of TSO
//! the paper reasons with. This keeps the protocol honest (permissions,
//! invalidations, serialization, deadlocks are all real) without shipping
//! data bytes through messages.
//!
//! # Cache locking
//!
//! The controller keeps a per-line lock count mirroring the core's Atomic
//! Queue (Implication 2 of the paper, §3.2.2). External requests that hit a
//! locked line are **parked at the owner** and replayed on unlock — the
//! paper's progress invariant: only the core executing a Free atomic can lift
//! its own lock (§3.2.5). Locked lines are never chosen as replacement
//! victims (§3.2.4); if a fill finds every way locked, it waits, which can
//! deadlock — by design, since breaking that deadlock is the job of the
//! *core's* watchdog.

// Non-test code must justify every panic site; see the `expect` messages
// documenting each invariant. Tests keep plain unwrap for brevity.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod audit;
pub mod chaos;
pub mod config;
pub mod dir;
pub mod msgs;
pub mod noc;
pub mod prefetch;
pub mod privcache;
pub mod progress;
pub mod stats;
pub mod system;
pub mod tagarray;
pub mod wheel;

pub use audit::{AuditConfig, AuditViolation};
pub use chaos::{ChaosConfig, SplitMix64};
pub use config::MemConfig;
pub use msgs::{CoreNotice, CoreResp, LatClass};
pub use noc::{LinkStats, NocConfig, NocStats, XbarPolicy};
pub use progress::{ProgressConfig, ProgressGuard, ProgressPolicy, ProgressReport, ProgressStats};
pub use stats::{HotLock, MemStats};
pub use system::{MemDiag, MemorySystem};

use serde::{Deserialize, Serialize};
use std::fmt;

/// A core (hardware thread) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A line-aligned physical address.
pub type Line = u64;

/// Simulation time in core cycles.
pub type Cycle = u64;

/// Debug tracing for one cache line, enabled by setting `FA_TRACE_LINE`
/// (hex) in the environment. Used by the protocol debugging tests; zero
/// cost when unset.
pub(crate) fn trace_line() -> Option<Line> {
    use std::sync::OnceLock;
    static LINE: OnceLock<Option<Line>> = OnceLock::new();
    *LINE.get_or_init(|| {
        std::env::var("FA_TRACE_LINE")
            .ok()
            .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
    })
}

pub(crate) fn trace(line: Line, msg: impl FnOnce() -> String) {
    if trace_line() == Some(line) {
        eprintln!("          {}", msg());
    }
}
