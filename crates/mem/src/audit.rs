//! Cycle-level invariant auditor for the coherence/locking substrate.
//!
//! Opt-in (zero cost when [`AuditConfig::enabled`] is false): the machine
//! driver calls [`MemorySystem::audit`](crate::MemorySystem::audit) once per
//! cycle and turns any [`AuditViolation`] into a structured error instead of
//! a silent wrong result or an unexplained timeout.
//!
//! Audited invariants:
//!
//! - **SWMR** (single-writer / multiple-reader): at most one private cache
//!   holds a line in a writable MESI state, and while a writer exists no
//!   other cache holds any copy.
//! - **Directory–L1 inclusion**: every line cached privately is covered by
//!   a directory entry naming that core as a (possibly stale superset)
//!   sharer. Silent evictions make the directory a *superset*, never a
//!   subset — a missing sharer bit means invalidations cannot reach the
//!   copy.
//! - **Lock-pairing bound**: every `load_lock`-acquired line lock is
//!   eventually released by a `store_unlock` or a squash. An unpaired lock
//!   cannot be observed structurally (the controller cannot know the
//!   future), so it is audited as a *bound*: no line may stay continuously
//!   locked longer than [`AuditConfig::max_lock_hold`] cycles. The core
//!   watchdog breaks genuine deadlocks orders of magnitude sooner, so a
//!   trip here means a lock leak (an AQ/controller desync).
//! - **Forward progress** (machine level, checked by the `sim` crate): no
//!   core may go [`AuditConfig::max_core_stall`] cycles without committing
//!   an instruction while unhalted — converting silent livelock into a
//!   report naming the stuck core.

use crate::{CoreId, Cycle, Line};
use serde::{Deserialize, Serialize};

/// Auditor configuration. Default: disabled, with bounds sized for the
/// stress configurations used in tests (generous enough that legal
/// contention never trips them).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditConfig {
    /// Master switch. When false auditing costs nothing per cycle.
    pub enabled: bool,
    /// Maximum cycles a line may stay continuously locked by one core.
    pub max_lock_hold: Cycle,
    /// Maximum cycles an unhalted core may go without committing an
    /// instruction (enforced by the machine driver, which sees commits).
    pub max_core_stall: Cycle,
    /// Run the full state sweep only every `sweep_every` cycles (0 is
    /// treated as 1). The per-core forward-progress bound is still enforced
    /// every cycle; only the O(resident lines) coherence/lock sweep is
    /// amortized. Detection latency for a violation grows by at most
    /// `sweep_every - 1` cycles; whether a violation is caught does not
    /// change, because sweeps inspect accumulated state, not per-cycle
    /// deltas.
    pub sweep_every: Cycle,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            enabled: false,
            max_lock_hold: 100_000,
            max_core_stall: 1_000_000,
            sweep_every: 1,
        }
    }
}

impl AuditConfig {
    /// Enabled with default bounds.
    pub fn on() -> AuditConfig {
        AuditConfig { enabled: true, ..AuditConfig::default() }
    }
}

/// A violated invariant, with enough context to debug it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditViolation {
    /// Two caches hold write permission, or a writer coexists with readers.
    MultipleWriters {
        /// The offending line.
        line: Line,
        /// Cores holding the line writable.
        writers: Vec<CoreId>,
        /// Cores holding any copy.
        holders: Vec<CoreId>,
    },
    /// A privately cached line has no covering directory sharer bit.
    InclusionHole {
        /// The offending line.
        line: Line,
        /// The core whose copy the directory does not know about.
        core: CoreId,
        /// True if the directory has no entry for the line at all.
        entry_missing: bool,
    },
    /// A line stayed locked past the configured bound — a lock leak.
    LockLeak {
        /// The locked line.
        line: Line,
        /// The core holding it.
        core: CoreId,
        /// Cycles held so far.
        held_for: Cycle,
        /// Current lock count.
        count: u32,
    },
    /// An unhalted core went too long without committing an instruction.
    NoProgress {
        /// The stuck core.
        core: CoreId,
        /// Cycles since its last commit.
        stalled_for: Cycle,
        /// Instructions it had committed by then.
        committed: u64,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditViolation::MultipleWriters { line, writers, holders } => write!(
                f,
                "SWMR violated on line {line:#x}: writers {writers:?}, holders {holders:?}"
            ),
            AuditViolation::InclusionHole { line, core, entry_missing } => write!(
                f,
                "inclusion violated on line {line:#x}: {core} holds a copy but the directory {}",
                if *entry_missing { "has no entry" } else { "does not list it as a sharer" }
            ),
            AuditViolation::LockLeak { line, core, held_for, count } => write!(
                f,
                "lock leak on line {line:#x}: {core} has held it for {held_for} cycles \
                 (count {count}) without store_unlock or squash-release"
            ),
            AuditViolation::NoProgress { core, stalled_for, committed } => write!(
                f,
                "no forward progress on {core}: {stalled_for} cycles without a commit \
                 ({committed} instructions committed so far)"
            ),
        }
    }
}

impl std::error::Error for AuditViolation {}

/// Auditor counters surfaced through [`MemStats`](crate::stats::MemStats).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditStats {
    /// Audit sweeps performed.
    pub sweeps: u64,
    /// Longest continuous lock hold observed (cycles).
    pub max_lock_hold_seen: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_on_is_on() {
        assert!(!AuditConfig::default().enabled);
        let on = AuditConfig::on();
        assert!(on.enabled);
        assert_eq!(on.max_lock_hold, AuditConfig::default().max_lock_hold);
    }

    #[test]
    fn violations_render_their_context() {
        let v = AuditViolation::MultipleWriters {
            line: 0x1c0,
            writers: vec![CoreId(0), CoreId(2)],
            holders: vec![CoreId(0), CoreId(1), CoreId(2)],
        };
        let s = v.to_string();
        assert!(s.contains("0x1c0") && s.contains("SWMR"));
        let v = AuditViolation::LockLeak { line: 0x40, core: CoreId(1), held_for: 9, count: 2 };
        assert!(v.to_string().contains("lock leak"));
        let v = AuditViolation::NoProgress { core: CoreId(3), stalled_for: 7, committed: 55 };
        assert!(v.to_string().contains("c3"));
        let v = AuditViolation::InclusionHole { line: 0x80, core: CoreId(0), entry_missing: true };
        assert!(v.to_string().contains("no entry"));
    }
}
