//! Memory-system statistics.

use crate::audit::AuditStats;
use crate::chaos::ChaosStats;
use crate::noc::NocStats;
use crate::progress::ProgressStats;
use crate::{Cycle, Line};
use fa_trace::Hist;
use serde::{Deserialize, Serialize};

/// Per-core memory counters.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreMemStats {
    /// Demand reads served by the L1D.
    pub l1_hits: u64,
    /// Demand reads served by the private L2.
    pub l2_hits: u64,
    /// Demand reads served by the LLC.
    pub llc_hits: u64,
    /// Demand reads served by main memory.
    pub mem_accesses: u64,
    /// Demand reads served by a remote private cache (dirty transfer).
    pub remote_transfers: u64,
    /// Invalidations received (external writes to cached lines).
    pub invals_received: u64,
    /// External requests parked because the target line was locked.
    pub parked_on_lock: u64,
    /// Capacity evictions from the private hierarchy.
    pub evictions: u64,
    /// Fills that had to retry because every way in the set was locked.
    pub fill_stalled_all_locked: u64,
    /// Longest cycles any single fill spent stalled on an all-ways-locked
    /// set before completing (starvation metric).
    pub max_fill_stall: Cycle,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Stores performed (backing store writes).
    pub stores_performed: u64,
    /// Σ interconnect transfer cycles of demand-read fills, per
    /// [`LatClass`](crate::msgs::LatClass) index (the memory-side view of
    /// where fill latency went; local L1 hits contribute 0).
    pub fill_cycles_by_class: [u64; 5],
    /// Distribution of cycles fills spent stalled on an all-ways-locked
    /// set (one sample per stalled fill, recorded at placement).
    pub fill_stall_hist: Hist,
    /// Distribution of cache-lock hold windows (one sample per outermost
    /// `lock → unlock` pair, recorded at release).
    pub lock_hold_hist: Hist,
}

/// Directory / shared-level counters.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirStats {
    /// Requests processed.
    pub requests: u64,
    /// Requests parked behind a busy line.
    pub parked_busy: u64,
    /// Invalidations sent on behalf of GetX.
    pub invals_sent: u64,
    /// Downgrades sent on behalf of GetS.
    pub downgrades_sent: u64,
    /// Directory entries evicted (inclusion back-invalidations).
    pub entry_evictions: u64,
    /// Requests that waited for a directory way to free up.
    pub alloc_waits: u64,
    /// Starved requests promoted to a rescue reservation (anti-livelock
    /// valve; nonzero only under pathological allocation thrashing).
    pub alloc_rescues: u64,
}

/// Aggregated memory-system statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Per-core counters, indexed by core id.
    pub cores: Vec<CoreMemStats>,
    /// Directory counters.
    pub dir: DirStats,
    /// Total protocol messages delivered (for the energy model). Mirrors
    /// `noc.net_messages`; kept as a flat field for the energy model and
    /// existing consumers.
    pub messages: u64,
    /// Interconnect counters: per-link utilization, queue-depth histograms
    /// and per-[`LatClass`](crate::msgs::LatClass) network latency.
    pub noc: NocStats,
    /// Fault-injection counters (all zero when chaos is off).
    pub chaos: ChaosStats,
    /// Invariant-audit counters (all zero when auditing is off).
    pub audit: AuditStats,
    /// Forward-progress counters per retry site (always collected; zero
    /// on runs that never retried anything).
    pub progress: ProgressStats,
    /// The hottest locked lines across all cores, ordered by total hold
    /// cycles (descending, line address as the deterministic tiebreak),
    /// truncated to [`MemStats::HOT_LOCKS`] entries.
    pub hot_locks: Vec<HotLock>,
}

/// Contention summary for one cache line that was lock-held.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotLock {
    /// Line address.
    pub line: Line,
    /// Outermost lock acquisitions.
    pub acquisitions: u64,
    /// Total cycles held locked.
    pub hold_cycles: u64,
}

impl MemStats {
    /// Entries kept in [`MemStats::hot_locks`].
    pub const HOT_LOCKS: usize = 8;

    /// Creates zeroed statistics for `n` cores.
    pub fn new(n: usize) -> MemStats {
        MemStats { cores: vec![CoreMemStats::default(); n], ..MemStats::default() }
    }

    /// Sum of demand reads across all levels and cores.
    pub fn total_demand_reads(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.l1_hits + c.l2_hits + c.llc_hits + c.mem_accesses + c.remote_transfers)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut s = MemStats::new(2);
        s.cores[0].l1_hits = 5;
        s.cores[1].mem_accesses = 3;
        assert_eq!(s.total_demand_reads(), 8);
    }
}
