//! Per-core private cache controller.
//!
//! Owns the L1D presence array, the private L2 coherence array (the L1 is
//! inclusive in the L2), the MSHRs, the line lock table that mirrors the
//! core's Atomic Queue, and the queue of external requests parked on locked
//! lines.

use crate::msgs::{DirMsg, DirReq, DirReqKind, L1Msg, LatClass};
use crate::prefetch::StridePrefetcher;
use crate::progress::{ProgressGuard, ProgressPolicy};
use crate::tagarray::TagArray;
use crate::{CoreId, Cycle, Line, MemConfig};
use fa_isa::{line_of, Addr};
use fa_trace::{Hist, TraceBuf, TraceEvent, MESI_NONE};
use std::collections::{HashMap, VecDeque};

/// Stalled-fill retry policy (site `cache-fill`): bounded exponential
/// backoff, capped at `1 << 6` = 64 cycles between attempts.
const FILL_POLICY: ProgressPolicy = ProgressPolicy::backoff(6);

/// MESI state of a privately cached line (`I` = not present).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mesi {
    /// Modified: exclusive, dirty.
    M,
    /// Exclusive: sole copy, clean.
    E,
    /// Shared.
    S,
}

impl Mesi {
    /// True when the state confers write permission.
    pub fn writable(self) -> bool {
        matches!(self, Mesi::M | Mesi::E)
    }

    /// Trace encoding ([`fa_trace::mesi_name`]).
    pub(crate) fn code(self) -> u8 {
        match self {
            Mesi::M => fa_trace::MESI_M,
            Mesi::E => fa_trace::MESI_E,
            Mesi::S => fa_trace::MESI_S,
        }
    }
}

/// Trace encoding of an optional MESI state (`None` = not present).
pub(crate) fn mesi_code(s: Option<Mesi>) -> u8 {
    s.map_or(MESI_NONE, Mesi::code)
}

/// Facts observed at a successful store perform, for the conformance
/// checker's serialization log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerformInfo {
    /// The line was lock-pinned at the instant of the write (after the
    /// `lock_on_access` step, before any unlock) — true for every
    /// store_unlock, i.e. inside an RMW's atomicity window.
    pub under_lock: bool,
}

/// Outcome of presenting a request to the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqOutcome {
    /// The request was accepted (a response will arrive eventually).
    Accepted,
    /// Structural hazard (MSHRs full); retry next cycle.
    Retry,
}

/// A demand access waiting on an MSHR.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Pending {
    Read { seq: u64, addr: Addr, exclusive: bool, lock_intent: bool },
    Store { seq: u64 },
    Prefetch,
}

#[derive(Debug)]
pub(crate) struct Mshr {
    pub pending: Vec<Pending>,
}

/// A grant that could not allocate because every way in the set was locked.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StalledFill {
    pub line: Line,
    pub excl: bool,
    pub class: LatClass,
    /// Directory park time carried on the grant (attribution metadata,
    /// threaded through to the eventual `ReadDone`).
    pub park: u64,
    /// Cycle the fill first stalled (starvation accounting).
    pub since: Cycle,
    /// Earliest cycle the next retry may run (exponential backoff, computed
    /// by the cache's `fill_guard`).
    pub next_retry: Cycle,
}

/// Actions the controller asks the system to carry out (scheduling events,
/// delivering notices). Returned instead of taken directly to keep borrows
/// simple and the controller unit-testable. The system routes `ToDir` onto
/// this core's request egress port and completion events onto its local
/// delivery port (see [`crate::noc`]); the controller itself stays
/// network-agnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Action {
    /// Deliver a read response to the core after `delay` cycles. `park` is
    /// the directory park time the underlying request accumulated
    /// (attribution metadata; 0 for local hits).
    ReadDone {
        delay: Cycle,
        seq: u64,
        addr: Addr,
        class: LatClass,
        had_write_perm: bool,
        locked: bool,
        park: u64,
    },
    /// Deliver a store-ready response after `delay` cycles.
    StoreReady { delay: Cycle, seq: u64, line: Line },
    /// Send a message to the directory after the network latency.
    ToDir(DirMsg),
    /// Notify the core that `line` left the private cache.
    LineLost { line: Line, remote_write: bool },
}

/// The private cache controller for one core.
#[derive(Debug)]
pub struct PrivCache {
    id: CoreId,
    l1: TagArray<()>,
    l2: TagArray<Mesi>,
    locks: HashMap<Line, u32>,
    mshrs: HashMap<Line, Mshr>,
    parked_ext: HashMap<Line, VecDeque<L1Msg>>,
    stalled_fills: VecDeque<StalledFill>,
    /// Forward-progress guard for stalled fills (site `cache-fill`): counts
    /// consecutive failed retries per line and computes the bounded
    /// exponential backoff windows.
    pub(crate) fill_guard: ProgressGuard<Line>,
    prefetcher: StridePrefetcher,
    prefetch_enabled: bool,
    mshr_cap: usize,
    l1_lat: Cycle,
    l2_lat: Cycle,
    /// Current cycle, refreshed by [`PrivCache::retry_stalled_fills`] at the
    /// top of every system tick (used for stall aging and backoff).
    now: Cycle,
    /// Cycle each currently-locked line was first locked (outermost
    /// acquisition), for hold-duration accounting.
    lock_since: HashMap<Line, Cycle>,
    /// Per-line `(acquisitions, total hold cycles)` since reset, feeding
    /// the hottest-locked-line report.
    pub(crate) lock_acct: HashMap<Line, (u64, u64)>,
    /// Lock-hold duration distribution (outermost lock → unlock).
    pub(crate) hist_lock_hold: Hist,
    /// All-ways-locked fill-stall duration distribution.
    pub(crate) hist_fill_stall: Hist,
    /// Structured event ring for this controller.
    pub(crate) trace: TraceBuf,
    // Counters surfaced through MemStats by the system.
    pub(crate) stat_l1_hits: u64,
    pub(crate) stat_l2_hits: u64,
    pub(crate) stat_parked: u64,
    pub(crate) stat_evictions: u64,
    pub(crate) stat_fill_stalled: u64,
    pub(crate) stat_fill_retries: u64,
    pub(crate) stat_fill_stall_max: Cycle,
    pub(crate) stat_prefetches: u64,
    pub(crate) stat_invals: u64,
    pub(crate) stat_stores: u64,
}

impl PrivCache {
    /// Creates the controller for core `id`.
    pub fn new(id: CoreId, cfg: &MemConfig) -> PrivCache {
        PrivCache {
            id,
            l1: TagArray::new(cfg.l1_sets, cfg.l1_ways),
            l2: TagArray::new(cfg.l2_sets, cfg.l2_ways),
            locks: HashMap::new(),
            mshrs: HashMap::new(),
            parked_ext: HashMap::new(),
            stalled_fills: VecDeque::new(),
            fill_guard: ProgressGuard::new(FILL_POLICY, id.0 as u64),
            prefetcher: StridePrefetcher::new(cfg.prefetch_degree),
            prefetch_enabled: cfg.stride_prefetch,
            mshr_cap: cfg.mshrs,
            l1_lat: cfg.l1_lat,
            l2_lat: cfg.l2_lat,
            now: 0,
            lock_since: HashMap::new(),
            lock_acct: HashMap::new(),
            hist_lock_hold: Hist::new(),
            hist_fill_stall: Hist::new(),
            trace: TraceBuf::new(&cfg.trace),
            stat_l1_hits: 0,
            stat_l2_hits: 0,
            stat_parked: 0,
            stat_evictions: 0,
            stat_fill_stalled: 0,
            stat_fill_retries: 0,
            stat_fill_stall_max: 0,
            stat_prefetches: 0,
            stat_invals: 0,
            stat_stores: 0,
        }
    }

    /// Sets the controller clock (the system calls this before dispatching
    /// work outside the per-tick [`PrivCache::retry_stalled_fills`] refresh,
    /// e.g. during fast-forward, so hold windows and event timestamps stay
    /// accurate).
    pub(crate) fn set_now(&mut self, now: Cycle) {
        self.now = now;
    }

    /// Current MESI state of `line` (`None` = Invalid).
    pub fn state(&self, line: Line) -> Option<Mesi> {
        self.l2.peek(line).copied()
    }

    /// True if the private cache holds write permission for `line`.
    pub fn writable(&self, line: Line) -> bool {
        self.state(line).map(Mesi::writable).unwrap_or(false)
    }

    /// True if `line` is currently lock-pinned (lock count > 0).
    pub fn is_locked(&self, line: Line) -> bool {
        self.locks.contains_key(&line)
    }

    /// Lock count for `line`.
    pub fn lock_count(&self, line: Line) -> u32 {
        self.locks.get(&line).copied().unwrap_or(0)
    }

    /// Number of distinct locked lines.
    pub fn locked_lines(&self) -> usize {
        self.locks.len()
    }

    /// Handles a demand read from the core's LSU.
    ///
    /// `exclusive` requests write permission (load_lock); `lock_intent`
    /// additionally locks the line the moment permission is (or already is)
    /// held. Responses are emitted as [`Action::ReadDone`].
    pub(crate) fn read(
        &mut self,
        seq: u64,
        addr: Addr,
        exclusive: bool,
        lock_intent: bool,
        out: &mut Vec<Action>,
    ) -> ReqOutcome {
        let line = line_of(addr);
        let state = self.l2.touch(line).copied();
        let satisfied_locally =
            matches!(state, Some(s) if !exclusive || s.writable());
        if satisfied_locally {
            let had_wp = state.map(Mesi::writable).unwrap_or(false);
            if lock_intent {
                self.lock(line);
            }
            let (delay, class) = if self.l1.touch(line).is_some() {
                self.stat_l1_hits += 1;
                (self.l1_lat, LatClass::L1)
            } else {
                self.stat_l2_hits += 1;
                self.fill_l1(line);
                (self.l2_lat, LatClass::L2)
            };
            out.push(Action::ReadDone {
                delay,
                seq,
                addr,
                class,
                had_write_perm: had_wp,
                locked: lock_intent,
                park: 0,
            });
            return ReqOutcome::Accepted;
        }
        // Miss (or upgrade): route through an MSHR.
        let pending = Pending::Read { seq, addr, exclusive, lock_intent };
        self.miss(line, exclusive, pending, out)
    }

    /// Handles a write-permission request for the store at the SB head (or
    /// an at-commit store prefetch).
    pub(crate) fn store_acquire(
        &mut self,
        seq: u64,
        addr: Addr,
        out: &mut Vec<Action>,
    ) -> ReqOutcome {
        let line = line_of(addr);
        if self.l2.touch(line).map(|s| s.writable()).unwrap_or(false) {
            out.push(Action::StoreReady { delay: 1, seq, line });
            return ReqOutcome::Accepted;
        }
        self.miss(line, true, Pending::Store { seq }, out)
    }

    fn miss(
        &mut self,
        line: Line,
        exclusive: bool,
        pending: Pending,
        out: &mut Vec<Action>,
    ) -> ReqOutcome {
        if let Some(mshr) = self.mshrs.get_mut(&line) {
            // Merge into the outstanding request. Exactly one directory
            // request is in flight per MSHR at any time: if this merge needs
            // write permission but a GetS is outstanding, the fill logic
            // re-requests GetX for the leftovers once the S grant lands.
            mshr.pending.push(pending);
            return ReqOutcome::Accepted;
        }
        if self.mshrs.len() >= self.mshr_cap {
            return ReqOutcome::Retry;
        }
        let kind = if exclusive { DirReqKind::GetX } else { DirReqKind::GetS };
        self.mshrs.insert(line, Mshr { pending: vec![pending] });
        out.push(Action::ToDir(DirMsg::Req(DirReq { from: self.id, line, kind })));
        // Train the prefetcher on demand misses only.
        self.maybe_prefetch(line, out);
        ReqOutcome::Accepted
    }

    /// Issues stride prefetches for a demand miss on `line`.
    pub(crate) fn maybe_prefetch(&mut self, line: Line, out: &mut Vec<Action>) {
        if !self.prefetch_enabled {
            return;
        }
        for target in self.prefetcher.on_miss(line) {
            if self.l2.contains(target) || self.mshrs.contains_key(&target) {
                continue;
            }
            // Leave headroom for demand requests.
            if self.mshrs.len() + 2 >= self.mshr_cap {
                break;
            }
            self.mshrs.insert(target, Mshr { pending: vec![Pending::Prefetch] });
            self.stat_prefetches += 1;
            out.push(Action::ToDir(DirMsg::Req(DirReq {
                from: self.id,
                line: target,
                kind: DirReqKind::GetS,
            })));
        }
    }

    /// Attempts to perform a store: requires write permission. Transitions
    /// the line to M and reports perform-time facts on success; the caller
    /// then writes the backing store. `lock` applies the `lock_on_access`
    /// responsibility; `unlock` releases one lock count (store_unlock
    /// draining).
    pub(crate) fn try_store_perform(
        &mut self,
        addr: Addr,
        lock: bool,
        unlock: bool,
        out: &mut Vec<Action>,
    ) -> Option<PerformInfo> {
        let line = line_of(addr);
        match self.l2.touch(line) {
            Some(s) if s.writable() => {
                let was = *s;
                *s = Mesi::M;
                if was != Mesi::M {
                    self.trace.record(
                        self.now,
                        TraceEvent::Mesi { line, from: was.code(), to: Mesi::M.code() },
                    );
                }
                self.stat_stores += 1;
                if lock {
                    self.lock(line);
                }
                // Capture lock state at the write proper: after the
                // lock_on_access responsibility, before the unlock step —
                // a draining store_unlock is *inside* its atomicity window.
                let under_lock = self.locks.contains_key(&line);
                if unlock {
                    self.unlock(line, out);
                }
                Some(PerformInfo { under_lock })
            }
            _ => None,
        }
    }

    /// Increments the lock count on `line` (load_lock performed on an
    /// already-writable line, or lock transfer during forwarding). The
    /// outermost acquisition opens the hold-duration window.
    pub(crate) fn lock(&mut self, line: Line) {
        let cnt = self.locks.entry(line).or_insert(0);
        *cnt += 1;
        let cnt = *cnt;
        if cnt == 1 {
            self.lock_since.insert(line, self.now);
            self.lock_acct.entry(line).or_insert((0, 0)).0 += 1;
        }
        self.trace.record(self.now, TraceEvent::LockAcquire { line, count: cnt });
    }

    /// Decrements the lock count on `line`; at zero the line unpins and all
    /// parked external requests replay in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if the line is not locked — an AQ/controller desync bug.
    pub(crate) fn unlock(&mut self, line: Line, out: &mut Vec<Action>) {
        let cnt = self.locks.get_mut(&line).expect("unlock of unlocked line");
        *cnt -= 1;
        if *cnt == 0 {
            self.locks.remove(&line);
            let held = self
                .lock_since
                .remove(&line)
                .map_or(0, |since| self.now.saturating_sub(since));
            self.hist_lock_hold.record(held);
            self.lock_acct.entry(line).or_insert((0, 0)).1 += held;
            self.trace.record(self.now, TraceEvent::LockRelease { line, held });
            // A freed lock may unblock a stalled fill in this set: cancel any
            // backoff so the oldest waiter retries on the very next tick
            // instead of sleeping out its backoff window.
            for f in self.stalled_fills.iter_mut() {
                f.next_retry = self.now;
            }
            if let Some(queue) = self.parked_ext.remove(&line) {
                for msg in queue {
                    self.handle_ext(msg, out);
                }
            }
        }
    }

    /// Handles an external (directory-initiated) message.
    pub(crate) fn handle_ext(&mut self, msg: L1Msg, out: &mut Vec<Action>) {
        match msg {
            L1Msg::Inv { line } => {
                if self.is_locked(line) || self.fill_pending(line) {
                    crate::trace(line, || format!("{:?} Inv PARKED (locked)", self.id));
                    self.stat_parked += 1;
                    self.trace.record(self.now, TraceEvent::LockPark { line });
                    self.parked_ext.entry(line).or_default().push_back(msg);
                    return;
                }
                let was = self.l2.remove(line);
                let had = was.is_some();
                crate::trace(line, || format!("{:?} Inv applied, had_line={had}", self.id));
                if had {
                    self.trace.record(
                        self.now,
                        TraceEvent::Mesi { line, from: mesi_code(was), to: fa_trace::MESI_I },
                    );
                    self.l1.remove(line);
                    self.stat_invals += 1;
                    out.push(Action::LineLost { line, remote_write: true });
                }
                out.push(Action::ToDir(DirMsg::InvAck { from: self.id, line }));
            }
            L1Msg::Downgrade { line } => {
                if self.is_locked(line) || self.fill_pending(line) {
                    self.stat_parked += 1;
                    self.trace.record(self.now, TraceEvent::LockPark { line });
                    self.parked_ext.entry(line).or_default().push_back(msg);
                    return;
                }
                let had = match self.l2.peek_mut(line) {
                    Some(s) => {
                        let was = s.code();
                        *s = Mesi::S;
                        if was != Mesi::S.code() {
                            self.trace.record(
                                self.now,
                                TraceEvent::Mesi { line, from: was, to: Mesi::S.code() },
                            );
                        }
                        true
                    }
                    None => false,
                };
                out.push(Action::ToDir(DirMsg::DownAck { from: self.id, line, had_line: had }));
            }
            L1Msg::GrantS { line, class, park } => self.on_grant(line, false, class, park, out),
            L1Msg::GrantX { line, class, park } => self.on_grant(line, true, class, park, out),
        }
    }

    fn fill_pending(&self, line: Line) -> bool {
        self.stalled_fills.iter().any(|f| f.line == line)
    }

    fn on_grant(&mut self, line: Line, excl: bool, class: LatClass, park: u64, out: &mut Vec<Action>) {
        crate::trace(line, || format!("{:?} Grant excl={excl}", self.id));
        if !self.try_fill(line, excl, class, park, out) {
            self.stat_fill_stalled += 1;
            self.stalled_fills.push_back(StalledFill {
                line,
                excl,
                class,
                park,
                since: self.now,
                next_retry: self.now,
            });
        }
    }

    /// Retries fills stalled on all-ways-locked sets. Called once per cycle
    /// by the system with the current time.
    ///
    /// Fairness and starvation bounds: the queue is serviced strictly
    /// oldest-first, failed attempts back off exponentially (capped at 64
    /// cycles) so a long-locked set is not hammered every cycle, and any
    /// unlock resets the backoff so a freed way is claimed on the next tick.
    /// The longest observed stall is tracked in `stat_fill_stall_max`.
    pub(crate) fn retry_stalled_fills(&mut self, now: Cycle, out: &mut Vec<Action>) {
        self.now = now;
        if self.stalled_fills.is_empty() {
            return;
        }
        let mut still_stalled = VecDeque::new();
        while let Some(mut f) = self.stalled_fills.pop_front() {
            self.stat_fill_stall_max = self.stat_fill_stall_max.max(now.saturating_sub(f.since));
            if now < f.next_retry {
                still_stalled.push_back(f);
                continue;
            }
            if self.try_fill(f.line, f.excl, f.class, f.park, out) {
                self.fill_guard.note_success(f.line);
                let waited = now.saturating_sub(f.since);
                self.hist_fill_stall.record(waited);
                self.trace.record(now, TraceEvent::FillStall { line: f.line, waited });
                if let Some(queue) = self.parked_ext.remove(&f.line) {
                    // External requests parked behind the pending fill replay
                    // now (unless the fill locked the line — then they stay).
                    if self.is_locked(f.line) {
                        self.parked_ext.insert(f.line, queue);
                    } else {
                        for msg in queue {
                            self.handle_ext(msg, out);
                        }
                    }
                }
            } else {
                self.stat_fill_retries += 1;
                let attempts = self.fill_guard.note_attempt(f.line);
                f.next_retry = now + self.fill_guard.backoff_delay(attempts);
                still_stalled.push_back(f);
            }
        }
        self.stalled_fills = still_stalled;
    }

    fn try_fill(
        &mut self,
        line: Line,
        excl: bool,
        class: LatClass,
        park: u64,
        out: &mut Vec<Action>,
    ) -> bool {
        if !self.l2.contains(line) {
            let filled = if excl { Mesi::E } else { Mesi::S };
            let locks = &self.locks;
            match self.l2.insert(line, filled, |l| locks.contains_key(&l)) {
                Ok(Some((victim, state))) => {
                    self.l1.remove(victim);
                    self.stat_evictions += 1;
                    self.trace.record(
                        self.now,
                        TraceEvent::Mesi {
                            line: victim,
                            from: state.code(),
                            to: fa_trace::MESI_I,
                        },
                    );
                    out.push(Action::LineLost { line: victim, remote_write: false });
                }
                Ok(None) => {}
                Err(_) => return false,
            }
            self.trace.record(
                self.now,
                TraceEvent::Mesi { line, from: MESI_NONE, to: filled.code() },
            );
        } else if excl {
            // Upgrade grant for a line we still hold in S. The `contains`
            // check above guarantees presence.
            *self.l2.peek_mut(line).expect("upgrade target resident") = Mesi::E;
            self.trace.record(
                self.now,
                TraceEvent::Mesi { line, from: Mesi::S.code(), to: Mesi::E.code() },
            );
        }
        self.fill_l1(line);
        // Fill complete: release the directory's serialization on the line.
        out.push(Action::ToDir(DirMsg::Unblock { from: self.id, line }));
        // Complete the MSHR.
        let Some(mshr) = self.mshrs.remove(&line) else {
            // Grant with no MSHR cannot happen: MSHRs are only removed here.
            unreachable!("grant for line {line:#x} with no MSHR");
        };
        let mut leftovers = Vec::new();
        for p in mshr.pending {
            match p {
                Pending::Read { seq, addr, exclusive, lock_intent } => {
                    if exclusive && !excl {
                        leftovers.push(Pending::Read { seq, addr, exclusive, lock_intent });
                        continue;
                    }
                    if lock_intent {
                        self.lock(line);
                    }
                    out.push(Action::ReadDone {
                        delay: self.l1_lat,
                        seq,
                        addr,
                        class,
                        had_write_perm: false,
                        locked: lock_intent,
                        park,
                    });
                }
                Pending::Store { seq } => {
                    if excl {
                        out.push(Action::StoreReady { delay: 1, seq, line });
                    } else {
                        leftovers.push(Pending::Store { seq });
                    }
                }
                Pending::Prefetch => {}
            }
        }
        if !leftovers.is_empty() {
            // The grant was S but someone needs X: re-request.
            self.mshrs.insert(line, Mshr { pending: leftovers });
            out.push(Action::ToDir(DirMsg::Req(DirReq {
                from: self.id,
                line,
                kind: DirReqKind::GetX,
            })));
        }
        true
    }

    fn fill_l1(&mut self, line: Line) {
        if self.l1.contains(line) {
            return;
        }
        let locks = &self.locks;
        match self.l1.insert(line, (), |l| locks.contains_key(&l)) {
            Ok(_) => {}
            Err(_) => {
                // L1 is only a latency filter; if every way is locked we
                // simply skip the L1 fill (the L2 keeps the line and the
                // locks stay precise).
            }
        }
    }

    /// Number of outstanding MSHRs (used by tests).
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    /// True if an external request is parked on `line`.
    pub fn has_parked(&self, line: Line) -> bool {
        self.parked_ext.contains_key(&line)
    }

    /// All resident L2 lines with their MESI state, in deterministic set
    /// order (invariant auditing).
    pub(crate) fn resident_lines(&self) -> impl Iterator<Item = (Line, Mesi)> + '_ {
        self.l2.iter().map(|(l, s)| (l, *s))
    }

    /// All currently locked lines with their counts (auditing/diagnostics;
    /// order is unspecified — callers sort).
    pub(crate) fn locks_iter(&self) -> impl Iterator<Item = (Line, u32)> + '_ {
        self.locks.iter().map(|(l, c)| (*l, *c))
    }

    /// Lines whose fills are stalled on all-ways-locked sets (diagnostics).
    pub(crate) fn stalled_fill_lines(&self) -> impl Iterator<Item = Line> + '_ {
        self.stalled_fills.iter().map(|f| f.line)
    }

    /// True while any fill is stalled (its retry poll runs every cycle, so
    /// the clock cannot be fast-forwarded past it).
    pub(crate) fn has_stalled_fills(&self) -> bool {
        !self.stalled_fills.is_empty()
    }

    /// Test-only: forcibly sets a line's MESI state, bypassing the protocol.
    /// Exists solely to prove the invariant auditor detects corruption.
    #[cfg(test)]
    pub(crate) fn force_state(&mut self, line: Line, st: Mesi) {
        if let Some(s) = self.l2.peek_mut(line) {
            *s = st;
        } else {
            let _ = self.l2.insert(line, st, |_| false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> PrivCache {
        PrivCache::new(CoreId(0), &MemConfig::tiny())
    }

    fn grant(c: &mut PrivCache, line: Line, excl: bool, out: &mut Vec<Action>) {
        let msg = if excl {
            L1Msg::GrantX { line, class: LatClass::Mem, park: 0 }
        } else {
            L1Msg::GrantS { line, class: LatClass::Mem, park: 0 }
        };
        c.handle_ext(msg, out);
    }

    #[test]
    fn cold_read_misses_to_directory_then_hits() {
        let mut c = cache();
        let mut out = Vec::new();
        assert_eq!(c.read(1, 0x100, false, false, &mut out), ReqOutcome::Accepted);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToDir(DirMsg::Req(DirReq { kind: DirReqKind::GetS, line: 0x100, .. }))
        )));
        out.clear();
        grant(&mut c, 0x100, false, &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::ReadDone { seq: 1, addr: 0x100, .. })));
        // Second read is an L1 hit.
        out.clear();
        assert_eq!(c.read(2, 0x108, false, false, &mut out), ReqOutcome::Accepted);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ReadDone { seq: 2, class: LatClass::L1, .. }
        )));
        assert_eq!(c.stat_l1_hits, 1);
    }

    #[test]
    fn lock_intent_read_locks_at_grant() {
        let mut c = cache();
        let mut out = Vec::new();
        c.read(1, 0x100, true, true, &mut out);
        assert!(!c.is_locked(0x100));
        out.clear();
        grant(&mut c, 0x100, true, &mut out);
        assert!(c.is_locked(0x100));
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ReadDone { locked: true, .. }
        )));
    }

    #[test]
    fn exclusive_read_on_shared_line_upgrades() {
        let mut c = cache();
        let mut out = Vec::new();
        c.read(1, 0x100, false, false, &mut out);
        out.clear();
        grant(&mut c, 0x100, false, &mut out); // now S
        assert_eq!(c.state(0x100), Some(Mesi::S));
        out.clear();
        c.read(2, 0x100, true, true, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToDir(DirMsg::Req(DirReq { kind: DirReqKind::GetX, .. }))
        )));
        out.clear();
        grant(&mut c, 0x100, true, &mut out);
        assert_eq!(c.state(0x100), Some(Mesi::E));
        assert!(c.is_locked(0x100));
    }

    #[test]
    fn inv_on_locked_line_parks_until_unlock() {
        let mut c = cache();
        let mut out = Vec::new();
        c.read(1, 0x100, true, true, &mut out);
        out.clear();
        grant(&mut c, 0x100, true, &mut out);
        out.clear();
        c.handle_ext(L1Msg::Inv { line: 0x100 }, &mut out);
        assert!(out.is_empty(), "Inv must be parked, got {out:?}");
        assert!(c.has_parked(0x100));
        // Unlock replays the Inv: line leaves, ack goes out.
        c.unlock(0x100, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::ToDir(DirMsg::InvAck { .. }))));
        assert!(out.iter().any(|a| matches!(
            a,
            Action::LineLost { line: 0x100, remote_write: true }
        )));
        assert_eq!(c.state(0x100), None);
    }

    #[test]
    fn multiple_locks_require_multiple_unlocks() {
        let mut c = cache();
        let mut out = Vec::new();
        c.read(1, 0x100, true, true, &mut out);
        grant(&mut c, 0x100, true, &mut out);
        c.lock(0x100);
        assert_eq!(c.lock_count(0x100), 2);
        out.clear();
        c.handle_ext(L1Msg::Inv { line: 0x100 }, &mut out);
        c.unlock(0x100, &mut out);
        assert!(out.is_empty(), "still locked once");
        c.unlock(0x100, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::ToDir(DirMsg::InvAck { .. }))));
    }

    #[test]
    fn inv_on_absent_line_acks_immediately() {
        let mut c = cache();
        let mut out = Vec::new();
        c.handle_ext(L1Msg::Inv { line: 0x100 }, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Action::ToDir(DirMsg::InvAck { line: 0x100, .. })));
    }

    #[test]
    fn downgrade_moves_m_to_s() {
        let mut c = cache();
        let mut out = Vec::new();
        c.read(1, 0x100, true, false, &mut out);
        grant(&mut c, 0x100, true, &mut out);
        assert!(c.try_store_perform(0x100, false, false, &mut out).is_some());
        assert_eq!(c.state(0x100), Some(Mesi::M));
        out.clear();
        c.handle_ext(L1Msg::Downgrade { line: 0x100 }, &mut out);
        assert_eq!(c.state(0x100), Some(Mesi::S));
        assert!(matches!(
            out[0],
            Action::ToDir(DirMsg::DownAck { had_line: true, .. })
        ));
    }

    #[test]
    fn store_perform_requires_write_permission() {
        let mut c = cache();
        let mut out = Vec::new();
        assert!(c.try_store_perform(0x100, false, false, &mut out).is_none());
        c.read(1, 0x100, false, false, &mut out);
        grant(&mut c, 0x100, false, &mut out); // S only
        assert!(c.try_store_perform(0x100, false, false, &mut out).is_none());
        c.read(2, 0x100, true, false, &mut out);
        grant(&mut c, 0x100, true, &mut out);
        let info = c.try_store_perform(0x100, false, false, &mut out).expect("M line performs");
        assert!(!info.under_lock);
    }

    #[test]
    fn store_perform_with_lock_and_unlock_responsibilities() {
        let mut c = cache();
        let mut out = Vec::new();
        c.read(1, 0x100, true, false, &mut out);
        grant(&mut c, 0x100, true, &mut out);
        // lock_on_access: an ordinary store locks on behalf of a forwarded
        // load_lock.
        let info = c.try_store_perform(0x100, true, false, &mut out).expect("performs");
        assert!(info.under_lock);
        assert!(c.is_locked(0x100));
        // store_unlock drains: unlocks — but the write itself happens
        // inside the lock window.
        let info = c.try_store_perform(0x100, false, true, &mut out).expect("performs");
        assert!(info.under_lock);
        assert!(!c.is_locked(0x100));
    }

    #[test]
    fn locked_lines_survive_capacity_pressure() {
        // tiny(): L2 is 8 sets x 4 ways. Fill one set beyond capacity with a
        // locked line present: the locked line must never be the victim.
        let mut c = cache();
        let mut out = Vec::new();
        let set_stride = 8 * 64; // lines mapping to the same L2 set
        let locked_line = 0x0;
        c.read(0, locked_line, true, true, &mut out);
        grant(&mut c, locked_line, true, &mut out);
        assert!(c.is_locked(locked_line));
        for i in 1..=8u64 {
            let line = i * set_stride;
            c.read(i, line, false, false, &mut out);
            grant(&mut c, line, false, &mut out);
        }
        assert!(c.state(locked_line).is_some(), "locked line was evicted");
    }

    #[test]
    fn fill_stalls_when_all_ways_locked_and_retries_after_unlock() {
        let mut cfg = MemConfig::tiny();
        cfg.l2_ways = 2;
        cfg.l2_sets = 2;
        cfg.l1_sets = 2;
        cfg.l1_ways = 2;
        let mut c = PrivCache::new(CoreId(0), &cfg);
        let mut out = Vec::new();
        let stride = 2 * 64;
        // Lock both ways of set 0.
        for i in 0..2u64 {
            let line = i * stride;
            c.read(i, line, true, true, &mut out);
            grant(&mut c, line, true, &mut out);
            assert!(c.is_locked(line));
        }
        // Third line in the same set cannot fill.
        out.clear();
        c.read(9, 2 * stride, false, false, &mut out);
        grant(&mut c, 2 * stride, false, &mut out);
        assert!(
            !out.iter().any(|a| matches!(a, Action::ReadDone { seq: 9, .. })),
            "fill should have stalled"
        );
        assert!(c.stat_fill_stalled > 0);
        // Unlock one way; the retry succeeds.
        c.unlock(0, &mut out);
        out.clear();
        c.retry_stalled_fills(0, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::ReadDone { seq: 9, .. })));
    }

    #[test]
    fn stalled_fill_backs_off_then_retries_promptly_after_unlock() {
        let mut cfg = MemConfig::tiny();
        cfg.l2_ways = 2;
        cfg.l2_sets = 2;
        cfg.l1_sets = 2;
        cfg.l1_ways = 2;
        let mut c = PrivCache::new(CoreId(0), &cfg);
        let mut out = Vec::new();
        let stride = 2 * 64;
        for i in 0..2u64 {
            let line = i * stride;
            c.read(i, line, true, true, &mut out);
            grant(&mut c, line, true, &mut out);
        }
        out.clear();
        c.read(9, 2 * stride, false, false, &mut out);
        grant(&mut c, 2 * stride, false, &mut out);
        assert_eq!(c.stat_fill_stalled, 1);
        // 1000 cycles with the set still fully locked: exponential backoff
        // (capped at 64 cycles) bounds the wasted retry attempts, where the
        // old every-cycle rotation would have burned 1000.
        for now in 1..=1000u64 {
            c.retry_stalled_fills(now, &mut out);
        }
        assert!(
            c.stat_fill_retries < 30,
            "backoff should bound retries, got {}",
            c.stat_fill_retries
        );
        assert!(c.stat_fill_stall_max >= 900, "stall age must be tracked");
        // Unlock resets the backoff: the fill completes on the very next
        // tick, not after sleeping out its backoff window.
        c.unlock(0, &mut out);
        out.clear();
        c.retry_stalled_fills(1001, &mut out);
        assert!(
            out.iter().any(|a| matches!(a, Action::ReadDone { seq: 9, .. })),
            "freed way must be claimed immediately after unlock"
        );
        assert!(c.stat_fill_stall_max >= 1000);
    }

    #[test]
    fn mshr_exhaustion_reports_retry() {
        let mut cfg = MemConfig::tiny();
        cfg.mshrs = 2;
        cfg.stride_prefetch = false;
        let mut c = PrivCache::new(CoreId(0), &cfg);
        let mut out = Vec::new();
        assert_eq!(c.read(1, 0x1000, false, false, &mut out), ReqOutcome::Accepted);
        assert_eq!(c.read(2, 0x2000, false, false, &mut out), ReqOutcome::Accepted);
        assert_eq!(c.read(3, 0x3000, false, false, &mut out), ReqOutcome::Retry);
        // Same-line requests merge instead.
        assert_eq!(c.read(4, 0x1008, false, false, &mut out), ReqOutcome::Accepted);
    }

    #[test]
    fn merged_exclusive_read_reissues_getx_after_s_grant() {
        let mut c = cache();
        let mut out = Vec::new();
        c.read(1, 0x100, false, false, &mut out); // GetS in flight
        c.read(2, 0x100, true, true, &mut out); // merges; no second request yet
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, Action::ToDir(DirMsg::Req(_))))
                .count(),
            1,
            "exactly one directory request may be in flight per line"
        );
        out.clear();
        grant(&mut c, 0x100, false, &mut out); // S grant satisfies read 1 only
        assert!(out.iter().any(|a| matches!(a, Action::ReadDone { seq: 1, .. })));
        assert!(!out.iter().any(|a| matches!(a, Action::ReadDone { seq: 2, .. })));
        // The leftover exclusive read re-requests GetX now.
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToDir(DirMsg::Req(DirReq { kind: DirReqKind::GetX, .. }))
        )));
        out.clear();
        grant(&mut c, 0x100, true, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::ReadDone { seq: 2, locked: true, .. })));
        assert!(c.is_locked(0x100));
    }
}
