//! Unified forward-progress framework.
//!
//! Every retry loop in the memory system — directory allocation polling,
//! all-ways-locked fill retries, LSQ request retries — is a place where a
//! protocol bug (or injected fault) can turn into a silent hang. Before
//! this module each site grew its own ad-hoc defense: the directory's
//! starvation rescue valve, the private cache's exponential fill backoff,
//! the core watchdog. [`ProgressGuard`] factors the shared mechanics into
//! one abstraction with a common escalation ladder:
//!
//! 1. **count** — every failed attempt per stuck resource is counted
//!    (`note_attempt`), cleared on success (`note_success`);
//! 2. **back off** — sites that re-poll a contended resource space their
//!    retries exponentially (`backoff_delay`), optionally with
//!    deterministic seeded jitter so symmetric requesters desynchronize;
//! 3. **rescue** — sites with a site-specific recovery action (the
//!    directory's reserved-way valve) trigger it at
//!    [`ProgressPolicy::rescue_after`] attempts;
//! 4. **escalate** — when a counter passes the machine-wide
//!    [`ProgressConfig`] threshold the run is aborted with a structured
//!    `NoProgress` error naming the site, instead of burning the rest of
//!    its cycle budget on a wedged resource.
//!
//! The guards are strictly observational below the rescue threshold: the
//! attempt counters never influence protocol timing, so golden runs are
//! bit-identical with the framework enabled (pinned by the differential
//! tests in `tests/progress_regressions.rs`).

use crate::chaos::SplitMix64;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// Per-site progress policy: when to rescue, how to back off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressPolicy {
    /// Attempts after which the site's rescue action fires (0 = the site
    /// has no rescue action).
    pub rescue_after: u64,
    /// Attempts by *competitors* tolerated while a rescue's owner is
    /// absent before the rescue is abandoned (0 = never abandoned).
    pub abandon_after: u64,
    /// Exponent cap for [`ProgressGuard::backoff_delay`]: the delay is
    /// `1 << min(attempts, backoff_cap)` cycles.
    pub backoff_cap: u32,
    /// Maximum deterministic jitter (cycles) added to each backoff window
    /// from the guard's seeded stream; 0 = no jitter (exact legacy
    /// schedules).
    pub jitter: u64,
}

impl ProgressPolicy {
    /// A pure polling site (no backoff): rescue at `rescue_after`
    /// attempts, abandon a stale rescue after `abandon_after` competitor
    /// attempts. The directory allocation valve.
    pub const fn polling(rescue_after: u64, abandon_after: u64) -> ProgressPolicy {
        ProgressPolicy { rescue_after, abandon_after, backoff_cap: 0, jitter: 0 }
    }

    /// A bounded-exponential-backoff site with no rescue action. The
    /// stalled-fill retry loop.
    pub const fn backoff(cap: u32) -> ProgressPolicy {
        ProgressPolicy { rescue_after: 0, abandon_after: 0, backoff_cap: cap, jitter: 0 }
    }

    /// A counting-only site (no backoff, no rescue). The LSQ retry path.
    pub const fn counting() -> ProgressPolicy {
        ProgressPolicy { rescue_after: 0, abandon_after: 0, backoff_cap: 0, jitter: 0 }
    }
}

/// Per-site stall bookkeeping: consecutive failed attempts per stuck
/// resource (keyed by whatever identifies the resource at that site),
/// historical maxima for stats, and the backoff/jitter calculator.
#[derive(Clone, Debug)]
pub struct ProgressGuard<K: Eq + Hash + Copy> {
    policy: ProgressPolicy,
    attempts: HashMap<K, u64>,
    rng: SplitMix64,
    /// Largest attempt count ever reached by one resource (historical;
    /// survives `note_success`).
    pub attempts_max: u64,
    /// Rescue actions fired.
    pub rescues: u64,
}

impl<K: Eq + Hash + Copy> ProgressGuard<K> {
    /// Creates a guard with the given policy; `seed` feeds the jitter
    /// stream (unused while `policy.jitter == 0`).
    pub fn new(policy: ProgressPolicy, seed: u64) -> ProgressGuard<K> {
        ProgressGuard {
            policy,
            attempts: HashMap::new(),
            rng: SplitMix64::new(seed),
            attempts_max: 0,
            rescues: 0,
        }
    }

    /// The guard's policy.
    pub fn policy(&self) -> &ProgressPolicy {
        &self.policy
    }

    /// Records one failed attempt for `key`; returns the consecutive
    /// attempt count.
    pub fn note_attempt(&mut self, key: K) -> u64 {
        let a = self.attempts.entry(key).or_insert(0);
        *a += 1;
        self.attempts_max = self.attempts_max.max(*a);
        *a
    }

    /// Clears `key`'s counter after it made progress.
    pub fn note_success(&mut self, key: K) {
        self.attempts.remove(&key);
    }

    /// Current consecutive attempt count for `key`.
    pub fn attempts(&self, key: K) -> u64 {
        self.attempts.get(&key).copied().unwrap_or(0)
    }

    /// True once `attempts` has reached the rescue threshold.
    pub fn needs_rescue(&self, attempts: u64) -> bool {
        self.policy.rescue_after != 0 && attempts >= self.policy.rescue_after
    }

    /// Records that the site's rescue action fired.
    pub fn note_rescue(&mut self) {
        self.rescues += 1;
    }

    /// Backoff window after `attempts` consecutive failures:
    /// `1 << min(attempts, backoff_cap)` cycles, plus up to
    /// `policy.jitter` cycles of deterministic seeded jitter.
    pub fn backoff_delay(&mut self, attempts: u64) -> u64 {
        let base = 1u64 << attempts.min(self.policy.backoff_cap as u64);
        if self.policy.jitter == 0 {
            base
        } else {
            base + self.rng.below(self.policy.jitter + 1)
        }
    }

    /// The worst consecutive attempt count currently outstanding (the
    /// escalation observable: a wedged resource's counter grows without
    /// bound, a merely contended one is cleared on success).
    pub fn worst_outstanding(&self) -> u64 {
        self.attempts.values().copied().max().unwrap_or(0)
    }

    /// Iterates the resources with outstanding failed attempts (pure
    /// read; arbitrary order — callers must not depend on it).
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.attempts.keys()
    }
}

/// Machine-wide escalation thresholds, carried in
/// [`MemConfig`](crate::MemConfig). The counters behind them are always
/// collected (they are a handful of compares on existing retry paths);
/// `enabled` gates only the escalation checks, so switching it off cannot
/// perturb results. Defaults sit far beyond anything a forward-progressing
/// run produces — golden runs never escalate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressConfig {
    /// Escalate to a structured `NoProgress` error when any site trips
    /// its threshold (default on; thresholds are wedge-sized).
    pub enabled: bool,
    /// Cycles an awake, unhalted core may go without committing before
    /// the machine driver escalates (site `core-commit`).
    pub stall_cycles: u64,
    /// Consecutive failed attempts one resource may accumulate at any
    /// retry site (`dir-alloc`, `cache-fill`, `lsq-retry`).
    pub max_attempts: u64,
    /// In-flight interconnect events allowed at any instant
    /// (`noc-backlog`).
    pub max_backlog: u64,
}

impl Default for ProgressConfig {
    fn default() -> ProgressConfig {
        ProgressConfig {
            enabled: true,
            stall_cycles: 10_000_000,
            max_attempts: 5_000_000,
            max_backlog: 10_000_000,
        }
    }
}

impl ProgressConfig {
    /// Escalation disabled (counters still collected).
    pub fn off() -> ProgressConfig {
        ProgressConfig { enabled: false, ..ProgressConfig::default() }
    }
}

/// The minimal stuck-resource report an escalation produces: which site
/// tripped, what it observed, and the threshold it crossed. The machine
/// driver wraps this in a `SimError::NoProgress` together with a full
/// machine snapshot (locked lines, busy directory entries, flight tail).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressReport {
    /// Site name: `dir-alloc`, `cache-fill`, `lsq-retry`, `noc-backlog`
    /// or (machine-level) `core-commit`.
    pub site: &'static str,
    /// The counter value that tripped.
    pub observed: u64,
    /// The configured threshold it crossed.
    pub threshold: u64,
}

impl fmt::Display for ProgressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "site {} observed {} (threshold {})",
            self.site, self.observed, self.threshold
        )
    }
}

/// Per-site progress counters surfaced through
/// [`MemStats`](crate::MemStats). Always-on and strictly observational:
/// identical across trace modes, audit settings and thread counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressStats {
    /// Worst consecutive directory-allocation poll count ever reached.
    pub dir_alloc_attempts_max: u64,
    /// Directory rescue reservations fired (mirrors `dir.alloc_rescues`).
    pub dir_rescues: u64,
    /// Worst consecutive failed fill retries on one line.
    pub fill_attempts_max: u64,
    /// Worst consecutive LSQ request retries on one core.
    pub lsq_attempts_max: u64,
    /// Largest in-flight interconnect event population observed.
    pub noc_backlog_max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempts_count_clear_and_track_maxima() {
        let mut g: ProgressGuard<u64> = ProgressGuard::new(ProgressPolicy::counting(), 7);
        assert_eq!(g.note_attempt(1), 1);
        assert_eq!(g.note_attempt(1), 2);
        assert_eq!(g.note_attempt(2), 1);
        assert_eq!(g.worst_outstanding(), 2);
        g.note_success(1);
        assert_eq!(g.attempts(1), 0);
        assert_eq!(g.worst_outstanding(), 1);
        // Historical max survives the clear.
        assert_eq!(g.attempts_max, 2);
    }

    #[test]
    fn rescue_threshold_matches_policy() {
        let g: ProgressGuard<u64> = ProgressGuard::new(ProgressPolicy::polling(10, 4), 0);
        assert!(!g.needs_rescue(9));
        assert!(g.needs_rescue(10));
        let none: ProgressGuard<u64> = ProgressGuard::new(ProgressPolicy::counting(), 0);
        assert!(!none.needs_rescue(u64::MAX), "rescue_after == 0 means no rescue");
    }

    #[test]
    fn backoff_is_exponential_capped_and_jitter_free_by_default() {
        let mut g: ProgressGuard<u64> = ProgressGuard::new(ProgressPolicy::backoff(6), 0);
        assert_eq!(g.backoff_delay(1), 2);
        assert_eq!(g.backoff_delay(3), 8);
        assert_eq!(g.backoff_delay(6), 64);
        assert_eq!(g.backoff_delay(40), 64, "cap bounds the window");
    }

    #[test]
    fn jittered_backoff_is_bounded_and_seed_deterministic() {
        let policy = ProgressPolicy { jitter: 5, ..ProgressPolicy::backoff(6) };
        let draws = |seed: u64| {
            let mut g: ProgressGuard<u64> = ProgressGuard::new(policy, seed);
            (0..32).map(|_| g.backoff_delay(2)).collect::<Vec<u64>>()
        };
        let a = draws(42);
        let b = draws(42);
        assert_eq!(a, b, "same seed must draw the same jitter");
        assert!(a.iter().all(|&d| (4..=9).contains(&d)), "jitter bounded by policy");
        assert_ne!(a, draws(43), "different seeds must desynchronize");
    }

    #[test]
    fn config_defaults_are_wedge_sized_and_report_renders() {
        let p = ProgressConfig::default();
        assert!(p.enabled);
        assert!(p.stall_cycles >= 1_000_000);
        assert!(!ProgressConfig::off().enabled);
        let r = ProgressReport { site: "dir-alloc", observed: 12, threshold: 10 };
        let s = r.to_string();
        assert!(s.contains("dir-alloc") && s.contains("12") && s.contains("10"), "got: {s}");
    }
}
