//! Deterministic event wheel.
//!
//! A binary heap keyed by (cycle, insertion sequence): events scheduled for
//! the same cycle are processed in insertion order, which keeps the whole
//! simulator bit-deterministic. The memory system's wheel is owned by the
//! interconnect ([`crate::noc`]); the `(cycle, seq)` key is also what makes
//! the contended crossbar's arrival-order arbitration deterministic.

use crate::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-heap of timed events with stable same-cycle ordering.
pub struct Wheel<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for Wheel<E> {
    fn default() -> Self {
        Wheel { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<E> Wheel<E> {
    /// Creates an empty wheel.
    pub fn new() -> Wheel<E> {
        Wheel::default()
    }

    /// Schedules `event` at absolute cycle `at`.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pops the next event due at or before `now`, if any.
    pub fn pop_due(&mut self, now: Cycle) -> Option<E> {
        if self.heap.peek().map(|e| e.at <= now).unwrap_or(false) {
            // Invariant: peek() just returned Some, pop() cannot fail.
            self.heap.pop().map(|e| e.event)
        } else {
            None
        }
    }

    /// Cycle of the earliest pending event.
    pub fn next_at(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for Wheel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wheel").field("pending", &self.heap.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = Wheel::new();
        w.schedule(5, "b");
        w.schedule(3, "a");
        w.schedule(9, "c");
        assert_eq!(w.pop_due(2), None);
        assert_eq!(w.pop_due(5), Some("a"));
        assert_eq!(w.pop_due(5), Some("b"));
        assert_eq!(w.pop_due(5), None);
        assert_eq!(w.next_at(), Some(9));
        assert_eq!(w.pop_due(100), Some("c"));
        assert!(w.is_empty());
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut w = Wheel::new();
        for i in 0..10 {
            w.schedule(7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| w.pop_due(7)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}
