//! Memory-hierarchy configuration.

use crate::audit::AuditConfig;
use crate::chaos::ChaosConfig;
use crate::noc::NocConfig;
use crate::progress::ProgressConfig;
use fa_trace::{CheckMode, TraceConfig};
use serde::{Deserialize, Serialize};

/// Geometry and latency parameters for the memory system.
///
/// Defaults mirror the paper's Table 1 (an Icelake-like part at ~2 GHz).
/// Construct with [`MemConfig::default`] and adjust fields, e.g.:
///
/// ```
/// let cfg = fa_mem::MemConfig { l1_ways: 2, l1_sets: 4, ..Default::default() };
/// assert_eq!(cfg.l1_ways, 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1D sets (default 64: 48 KB / 64 B / 12 ways).
    pub l1_sets: usize,
    /// L1D associativity (default 12).
    pub l1_ways: usize,
    /// L1D hit latency in cycles (default 4, pipelined).
    pub l1_lat: u64,
    /// Private L2 sets (default 512: 256 KB / 64 B / 8 ways).
    pub l2_sets: usize,
    /// Private L2 associativity (default 8).
    pub l2_ways: usize,
    /// L2 hit latency in cycles (tags + data; default 14).
    pub l2_lat: u64,
    /// Shared LLC sets (default 16384: 16 MB / 64 B / 16 ways).
    pub llc_sets: usize,
    /// LLC associativity (default 16).
    pub llc_ways: usize,
    /// LLC data latency in cycles (default 45).
    pub llc_lat: u64,
    /// Directory sets. Default sized for 400 % coverage of one core's
    /// private lines × 32 cores (Table 1): 32768 sets × 16 ways.
    pub dir_sets: usize,
    /// Directory associativity (default 16).
    pub dir_ways: usize,
    /// Directory tag latency in cycles (default 5).
    pub dir_lat: u64,
    /// Main-memory access latency in cycles (default 160 ≈ 80 ns @ 2 GHz).
    pub mem_lat: u64,
    /// One-way network hop latency, core ↔ LLC/directory (default 8).
    pub net_lat: u64,
    /// Interconnect model (default: ideal crossbar — fixed `net_lat`,
    /// infinite bandwidth, bit-identical to the pre-NoC message path).
    pub noc: NocConfig,
    /// MSHRs per private cache (default 16).
    pub mshrs: usize,
    /// Enable the L1 stride prefetcher (Table 1; default true).
    pub stride_prefetch: bool,
    /// Prefetch degree: lines fetched ahead on a detected stride (default 2).
    pub prefetch_degree: usize,
    /// Deterministic fault injection (default: off).
    pub chaos: ChaosConfig,
    /// Cycle-level invariant auditing (default: off).
    pub audit: AuditConfig,
    /// Structured event tracing (default: off). Latency histograms are
    /// collected regardless of this mode; only event recording is gated.
    pub trace: TraceConfig,
    /// End-of-run axiomatic conformance checking (default: off). With
    /// `Tso`, the memory system logs the global write-serialization order
    /// and per-line directory write-epochs for the `sim::axiom` checker.
    pub check: CheckMode,
    /// Forward-progress escalation thresholds (default: on, with
    /// wedge-sized thresholds no forward-progressing run reaches). The
    /// underlying counters are collected unconditionally; `progress`
    /// only gates escalation, so it never perturbs results.
    pub progress: ProgressConfig,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            l1_sets: 64,
            l1_ways: 12,
            l1_lat: 4,
            l2_sets: 512,
            l2_ways: 8,
            l2_lat: 14,
            llc_sets: 16384,
            llc_ways: 16,
            llc_lat: 45,
            dir_sets: 32768,
            dir_ways: 16,
            dir_lat: 5,
            mem_lat: 160,
            net_lat: 8,
            noc: NocConfig::default(),
            mshrs: 16,
            stride_prefetch: true,
            prefetch_degree: 2,
            chaos: ChaosConfig::default(),
            audit: AuditConfig::default(),
            trace: TraceConfig::default(),
            check: CheckMode::default(),
            progress: ProgressConfig::default(),
        }
    }
}

impl MemConfig {
    /// A deliberately tiny hierarchy for stress tests: 2-way 4-set L1,
    /// 4-way 8-set L2, 4-way 8-set directory. Exposes eviction livelocks,
    /// all-ways-locked stalls and inclusion deadlocks quickly.
    pub fn tiny() -> MemConfig {
        MemConfig {
            l1_sets: 4,
            l1_ways: 2,
            l2_sets: 8,
            l2_ways: 4,
            llc_sets: 16,
            llc_ways: 4,
            dir_sets: 8,
            dir_ways: 4,
            mshrs: 4,
            stride_prefetch: false,
            ..MemConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1_geometry() {
        let c = MemConfig::default();
        // 48 KB L1: 64 sets * 12 ways * 64 B
        assert_eq!(c.l1_sets * c.l1_ways * 64, 48 * 1024);
        // 256 KB L2
        assert_eq!(c.l2_sets * c.l2_ways * 64, 256 * 1024);
        // 16 MB LLC
        assert_eq!(c.llc_sets * c.llc_ways * 64, 16 * 1024 * 1024);
    }

    #[test]
    fn tiny_is_small() {
        let c = MemConfig::tiny();
        assert!(c.l1_sets * c.l1_ways <= 8);
    }

    #[test]
    fn chaos_and_audit_default_off() {
        let c = MemConfig::default();
        assert!(!c.chaos.enabled);
        assert!(!c.audit.enabled);
    }

    #[test]
    fn progress_escalation_defaults_on_with_wedge_sized_thresholds() {
        let c = MemConfig::default();
        assert!(c.progress.enabled);
        assert!(c.progress.max_attempts >= 1_000_000);
        assert!(c.progress.max_backlog >= 1_000_000);
    }

    #[test]
    fn noc_defaults_to_ideal_crossbar() {
        let c = MemConfig::default();
        assert_eq!(c.noc.policy, crate::noc::XbarPolicy::Ideal);
        let n = NocConfig::contended(0);
        assert_eq!(n.policy, crate::noc::XbarPolicy::Contended);
        assert_eq!(n.link_bw, 1, "bandwidth is clamped to at least one flit/cycle");
    }
}
