//! Directory + shared LLC.
//!
//! A finite, **inclusive** directory of privately cached lines (Table 1:
//! "400 % coverage, 16 ways"). Per-line transactions serialize conflicting
//! requests; allocating an entry in a full set evicts a victim entry, which
//! back-invalidates every private copy — the source of the inclusion
//! deadlock the paper discusses in §3.2.5 (a parked back-invalidation stalls
//! the set until the locking core's watchdog intervenes).
//!
//! The LLC itself is a tag-only latency filter: a request whose line misses
//! pays the main-memory latency, otherwise the LLC latency.

use crate::msgs::{DirMsg, DirReq, DirReqKind, L1Msg, LatClass};
use crate::progress::{ProgressGuard, ProgressPolicy};
use crate::tagarray::TagArray;
use crate::{CoreId, Cycle, Line, MemConfig};
use fa_trace::{TraceBuf, TraceEvent};
use std::collections::{HashMap, VecDeque};

/// Consecutive failed allocation polls after which a request is promoted to
/// a *rescue reservation*: the next way freed in its set is held for it
/// alone. This is an anti-livelock valve, not a fairness policy — under
/// exactly periodic interconnect timing, a stream of fresh requests can win
/// every freed way forever while an older request polls every cycle. The
/// threshold sits far above anything a forward-progressing run produces
/// (whole golden runs accumulate < 2k waits *in total*), so normal timing
/// is untouched.
const ALLOC_RESCUE_THRESHOLD: u64 = 10_000;

/// Polls by *other* requests tolerated while a rescue reservation's owner
/// is absent before the reservation is dropped. Guards against wedging a
/// set on a reservation whose owner stopped retrying.
const ALLOC_RESCUE_ABANDON: u64 = 4_096;

/// The allocation valve as a [`ProgressGuard`] policy (site `dir-alloc`).
const ALLOC_POLICY: ProgressPolicy =
    ProgressPolicy::polling(ALLOC_RESCUE_THRESHOLD, ALLOC_RESCUE_ABANDON);

/// An in-flight per-line transaction.
#[derive(Clone, Copy, Debug)]
struct Txn {
    /// Bitmask of cores whose ack is awaited.
    awaiting: u64,
    /// Request to grant when the acks complete (None for pure evictions);
    /// the third element is the park time the request accumulated behind
    /// this entry before processing began (attribution metadata only).
    grant: Option<(DirReq, LatClass, Cycle)>,
    /// True for inclusion evictions: free the entry on completion.
    free_after: bool,
    /// Grantee whose fill-completion Unblock is awaited. While set, the
    /// entry stays serialized: no invalidation for a later requester can
    /// overtake the grant in flight.
    awaiting_unblock: Option<CoreId>,
}

impl Txn {
    fn acks(awaiting: u64, grant: Option<(DirReq, LatClass, Cycle)>, free_after: bool) -> Txn {
        Txn { awaiting, grant, free_after, awaiting_unblock: None }
    }

    fn unblock_of(core: CoreId) -> Txn {
        Txn { awaiting: 0, grant: None, free_after: false, awaiting_unblock: Some(core) }
    }
}

/// Directory entry for one line.
#[derive(Clone, Debug, Default)]
struct DirEntry {
    /// Bitmask of (possibly stale) sharers.
    sharers: u64,
    /// Exclusive owner, if any (also set in `sharers`).
    excl: Option<CoreId>,
    /// Serializing transaction.
    busy: Option<Txn>,
    /// Requests parked behind `busy`, each stamped with its arrival cycle
    /// so the eventual grant can report the park duration (the stamp is
    /// attribution metadata — protocol logic never reads it).
    parked: VecDeque<(DirReq, Cycle)>,
}

impl DirEntry {
    fn idle_unused(&self) -> bool {
        self.sharers == 0 && self.excl.is_none() && self.busy.is_none() && self.parked.is_empty()
    }
}

/// Actions the directory asks the system to carry out. `ToL1` actions are
/// routed onto the interconnect's response port ([`crate::noc`]): the
/// directory decides *what* to send and the access latency (`extra`); the
/// crossbar decides network latency, jitter and contention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DirAction {
    /// Send `msg` to core `core` after `extra` cycles of access time (the
    /// extra models directory/LLC/memory lookup) plus whatever network
    /// latency the interconnect charges.
    ToL1 { core: CoreId, msg: L1Msg, extra: Cycle },
    /// Re-inject a request into the directory next cycle (it is waiting for
    /// an entry allocation; the system polls it until a way frees up).
    Redispatch(DirReq),
}

fn bit(c: CoreId) -> u64 {
    1u64 << c.index()
}

/// The directory controller.
#[derive(Debug)]
pub struct Directory {
    entries: TagArray<DirEntry>,
    llc: TagArray<()>,
    dir_lat: Cycle,
    llc_lat: Cycle,
    mem_lat: Cycle,
    pub(crate) stat_requests: u64,
    pub(crate) stat_parked_busy: u64,
    pub(crate) stat_invals_sent: u64,
    pub(crate) stat_downgrades_sent: u64,
    pub(crate) stat_entry_evictions: u64,
    pub(crate) stat_alloc_waits: u64,
    pub(crate) stat_alloc_rescues: u64,
    /// Forward-progress guard for allocation polling (site `dir-alloc`):
    /// counts consecutive failed polls per starving request and decides
    /// when the rescue valve fires. Keyed lookups only, so the guard never
    /// affects event ordering.
    pub(crate) alloc_guard: ProgressGuard<(CoreId, Line)>,
    /// Active rescue reservation: the next way freed in this request's set
    /// is reserved for it alone. See [`ALLOC_RESCUE_THRESHOLD`].
    alloc_rescue: Option<(CoreId, Line)>,
    /// Polls by other requests in the rescued set since the reservation
    /// owner last polled.
    rescue_absent: u64,
    /// Current cycle, set by the system before dispatching messages
    /// (event timestamps only — never consulted by protocol logic).
    now: Cycle,
    /// Structured event ring for the directory.
    pub(crate) trace: TraceBuf,
    /// Conformance-check collection enabled (`cfg.check`).
    epochs_on: bool,
    /// Per-line write-epoch: bumped on every exclusive grant. Keyed
    /// outside the tag array so it survives entry eviction and keeps
    /// increasing for the line's whole lifetime. Empty while checking is
    /// off; never consulted by protocol logic.
    write_epochs: HashMap<Line, u64>,
}

impl Directory {
    /// Creates a directory per `cfg`.
    pub fn new(cfg: &MemConfig) -> Directory {
        Directory {
            entries: TagArray::new(cfg.dir_sets, cfg.dir_ways),
            llc: TagArray::new(cfg.llc_sets, cfg.llc_ways),
            dir_lat: cfg.dir_lat,
            llc_lat: cfg.llc_lat,
            mem_lat: cfg.mem_lat,
            stat_requests: 0,
            stat_parked_busy: 0,
            stat_invals_sent: 0,
            stat_downgrades_sent: 0,
            stat_entry_evictions: 0,
            stat_alloc_waits: 0,
            stat_alloc_rescues: 0,
            alloc_guard: ProgressGuard::new(ALLOC_POLICY, 0),
            alloc_rescue: None,
            rescue_absent: 0,
            now: 0,
            trace: TraceBuf::new(&cfg.trace),
            epochs_on: cfg.check.on(),
            write_epochs: HashMap::new(),
        }
    }

    /// Bumps the line's write-epoch (called at every exclusive grant).
    fn bump_write_epoch(&mut self, line: Line) {
        if self.epochs_on {
            *self.write_epochs.entry(line).or_insert(0) += 1;
        }
    }

    /// The line's current write-epoch. Must be non-decreasing along the
    /// line's write-serialization order — the conformance checker's
    /// cross-check that performs funnel through directory grants.
    pub(crate) fn write_epoch(&self, line: Line) -> u64 {
        self.write_epochs.get(&line).copied().unwrap_or(0)
    }

    /// Sets the directory clock (trace timestamps only).
    pub(crate) fn set_now(&mut self, now: Cycle) {
        self.now = now;
    }

    /// Handles a message addressed to the directory.
    pub(crate) fn handle(&mut self, msg: DirMsg, out: &mut Vec<DirAction>) {
        match msg {
            DirMsg::Req(req) => {
                self.stat_requests += 1;
                self.process_req(req, out);
            }
            DirMsg::InvAck { from, line } => {
                let e = self.entries.peek_mut(line).expect("InvAck for absent entry");
                e.sharers &= !bit(from);
                if e.excl == Some(from) {
                    e.excl = None;
                }
                let txn = e.busy.as_mut().expect("InvAck with no transaction");
                txn.awaiting &= !bit(from);
                if txn.awaiting == 0 {
                    self.complete_txn(line, out);
                }
            }
            DirMsg::DownAck { from, line, had_line } => {
                let e = self.entries.peek_mut(line).expect("DownAck for absent entry");
                if had_line {
                    // Owner keeps a shared copy.
                    e.sharers |= bit(from);
                } else {
                    e.sharers &= !bit(from);
                }
                if e.excl == Some(from) {
                    e.excl = None;
                }
                let txn = e.busy.as_mut().expect("DownAck with no transaction");
                txn.awaiting &= !bit(from);
                if txn.awaiting == 0 {
                    self.complete_txn(line, out);
                }
            }
            DirMsg::Unblock { from, line } => {
                let e = self.entries.peek_mut(line).expect("Unblock for absent entry");
                let txn = e.busy.take().expect("Unblock with no transaction");
                debug_assert_eq!(txn.awaiting_unblock, Some(from), "unexpected unblocker");
                self.pump_parked(line, out);
            }
        }
    }

    /// Processes parked requests until the entry blocks again.
    #[allow(clippy::while_let_loop)] // three distinct exit conditions
    fn pump_parked(&mut self, line: Line, out: &mut Vec<DirAction>) {
        loop {
            let Some(e) = self.entries.peek_mut(line) else { break };
            if e.busy.is_some() {
                break;
            }
            let Some((req, since)) = e.parked.pop_front() else { break };
            let waited = self.now.saturating_sub(since);
            self.process_on_idle_entry(req, waited, out);
        }
    }

    fn process_req(&mut self, req: DirReq, out: &mut Vec<DirAction>) {
        if self.entries.peek(req.line).is_none() {
            let Some(class) = self.try_allocate(req, out) else {
                return; // waiting for a way; req was queued
            };
            // Fresh entry: requester is the sole holder.
            let e = self.entries.peek_mut(req.line).expect("entry just allocated");
            e.excl = Some(req.from);
            e.sharers = bit(req.from);
            e.busy = Some(Txn::unblock_of(req.from));
            self.bump_write_epoch(req.line);
            out.push(DirAction::ToL1 {
                core: req.from,
                msg: L1Msg::GrantX { line: req.line, class, park: 0 },
                extra: self.dir_lat + self.class_extra(class),
            });
            return;
        }
        let now = self.now;
        let e = self.entries.peek_mut(req.line).expect("peeked non-absent above");
        if e.busy.is_some() {
            self.stat_parked_busy += 1;
            e.parked.push_back((req, now));
            self.trace.record(self.now, TraceEvent::DirPark { line: req.line });
            return;
        }
        self.process_on_idle_entry(req, 0, out);
    }

    /// Processes `req` against an existing, idle entry. `park` is how long
    /// the request already sat parked behind this entry (0 when served
    /// directly); it rides along on the eventual grant for attribution.
    fn process_on_idle_entry(&mut self, req: DirReq, park: Cycle, out: &mut Vec<DirAction>) {
        let dir_lat = self.dir_lat;
        let llc_extra = self.class_extra(LatClass::Llc);
        // Callers guarantee the entry exists and is idle.
        let e = self.entries.peek_mut(req.line).expect("idle entry exists");
        debug_assert!(e.busy.is_none());
        match req.kind {
            DirReqKind::GetS => {
                match e.excl {
                    Some(owner) if owner != req.from => {
                        e.busy = Some(Txn::acks(
                            bit(owner),
                            Some((req, LatClass::Remote, park)),
                            false,
                        ));
                        self.stat_downgrades_sent += 1;
                        out.push(DirAction::ToL1 {
                            core: owner,
                            msg: L1Msg::Downgrade { line: req.line },
                            extra: dir_lat,
                        });
                    }
                    _ => {
                        // No conflicting owner (or the requester itself after
                        // a silent eviction): grant immediately.
                        let others = e.sharers & !bit(req.from);
                        if others == 0 {
                            e.excl = Some(req.from);
                            e.sharers = bit(req.from);
                            e.busy = Some(Txn::unblock_of(req.from));
                            self.bump_write_epoch(req.line);
                            out.push(DirAction::ToL1 {
                                core: req.from,
                                msg: L1Msg::GrantX { line: req.line, class: LatClass::Llc, park },
                                extra: dir_lat + llc_extra,
                            });
                        } else {
                            e.excl = None;
                            e.sharers |= bit(req.from);
                            e.busy = Some(Txn::unblock_of(req.from));
                            out.push(DirAction::ToL1 {
                                core: req.from,
                                msg: L1Msg::GrantS { line: req.line, class: LatClass::Llc, park },
                                extra: dir_lat + llc_extra,
                            });
                        }
                    }
                }
            }
            DirReqKind::GetX => {
                let others = e.sharers & !bit(req.from);
                if others == 0 {
                    e.excl = Some(req.from);
                    e.sharers = bit(req.from);
                    e.busy = Some(Txn::unblock_of(req.from));
                    self.bump_write_epoch(req.line);
                    out.push(DirAction::ToL1 {
                        core: req.from,
                        msg: L1Msg::GrantX { line: req.line, class: LatClass::Llc, park },
                        extra: dir_lat + llc_extra,
                    });
                } else {
                    let class = if e.excl.is_some() { LatClass::Remote } else { LatClass::Llc };
                    e.busy = Some(Txn::acks(others, Some((req, class, park)), false));
                    for c in cores_in(others) {
                        self.stat_invals_sent += 1;
                        out.push(DirAction::ToL1 {
                            core: c,
                            msg: L1Msg::Inv { line: req.line },
                            extra: dir_lat,
                        });
                    }
                }
            }
        }
    }

    /// Allocates an entry (and an LLC tag) for `req.line`. Returns the
    /// latency class on success; on failure the request is emitted as a
    /// [`DirAction::Redispatch`], which the system replays next cycle —
    /// polling until an inclusion eviction frees a way.
    fn try_allocate(&mut self, req: DirReq, out: &mut Vec<DirAction>) -> Option<LatClass> {
        let key = (req.from, req.line);
        if let Some(rescue) = self.alloc_rescue {
            let same_set = self.entries.set_index(rescue.1) == self.entries.set_index(req.line);
            if same_set && rescue == key {
                self.rescue_absent = 0;
            } else if same_set {
                self.rescue_absent += 1;
                if self.rescue_absent > self.alloc_guard.policy().abandon_after {
                    // The reservation owner stopped retrying; drop the
                    // reservation rather than wedging the set.
                    self.alloc_rescue = None;
                } else {
                    // A starved request holds a reservation on this set's
                    // next freed way — don't compete for it.
                    self.stat_alloc_waits += 1;
                    out.push(DirAction::Redispatch(req));
                    return None;
                }
            }
        }
        let occupancy = self.entries.set_lines(req.line).count();
        if occupancy < self.entries.num_ways() {
            self.entries
                .insert(req.line, DirEntry::default(), |_| true)
                .expect("set not full");
            self.note_alloc_success(key);
            return Some(self.llc_class(req.line));
        }
        // Full set: free an unused entry if one exists.
        let reusable = self
            .entries
            .set_lines(req.line)
            .find(|(_, e)| e.idle_unused())
            .map(|(l, _)| l);
        if let Some(victim) = reusable {
            self.entries.remove(victim);
            self.entries
                .insert(req.line, DirEntry::default(), |_| true)
                .expect("way just freed");
            self.note_alloc_success(key);
            return Some(self.llc_class(req.line));
        }
        // Inclusion eviction: back-invalidate a victim's sharers, unless one
        // such eviction is already in flight for this set.
        let evicting = self
            .entries
            .set_lines(req.line)
            .any(|(_, e)| e.busy.map(|t| t.free_after).unwrap_or(false));
        if !evicting {
            let victim = self
                .entries
                .set_lines(req.line)
                .find(|(_, e)| e.busy.is_none())
                .map(|(l, _)| l);
            if let Some(vline) = victim {
                self.begin_back_inval(vline, out);
            }
            // If every entry is mid-transaction, simply wait for one to
            // finish — the poll below retries.
        }
        self.stat_alloc_waits += 1;
        let polls = self.alloc_guard.note_attempt(key);
        if self.alloc_guard.needs_rescue(polls) && self.alloc_rescue.is_none() {
            self.alloc_rescue = Some(key);
            self.rescue_absent = 0;
            self.alloc_guard.note_rescue();
            self.stat_alloc_rescues += 1;
            self.trace.record(self.now, TraceEvent::DirRescue { line: req.line });
        }
        out.push(DirAction::Redispatch(req));
        None
    }

    /// Clears starvation-valve state after `key` allocated its entry.
    fn note_alloc_success(&mut self, key: (CoreId, Line)) {
        self.trace.record(self.now, TraceEvent::DirAlloc { line: key.1 });
        self.alloc_guard.note_success(key);
        if self.alloc_rescue == Some(key) {
            self.alloc_rescue = None;
            self.rescue_absent = 0;
        }
    }

    /// Starts an inclusion eviction of `vline`: back-invalidate every
    /// (superset) sharer and free the entry once the acks collect.
    fn begin_back_inval(&mut self, vline: Line, out: &mut Vec<DirAction>) {
        self.stat_entry_evictions += 1;
        self.trace.record(self.now, TraceEvent::DirEvict { line: vline });
        let dir_lat = self.dir_lat;
        let e = self.entries.peek_mut(vline).expect("eviction victim resident");
        let targets = e.sharers;
        e.busy = Some(Txn::acks(targets, None, true));
        for c in cores_in(targets) {
            self.stat_invals_sent += 1;
            out.push(DirAction::ToL1 {
                core: c,
                msg: L1Msg::Inv { line: vline },
                extra: dir_lat,
            });
        }
    }

    /// Fault injection: force inclusion evictions of up to `n` idle entries
    /// with live sharers (a back-invalidation storm). Reuses the ordinary
    /// `free_after` transaction path, so storms are protocol-
    /// indistinguishable from real directory-conflict evictions — including
    /// the §3.2.5 hazard of a back-invalidation parking on a locked line.
    /// Returns the number of evictions started.
    pub(crate) fn storm_evict(&mut self, n: u32, out: &mut Vec<DirAction>) -> u64 {
        let victims: Vec<Line> = self
            .entries
            .iter()
            .filter(|(_, e)| e.busy.is_none() && e.sharers != 0)
            .map(|(l, _)| l)
            .take(n as usize)
            .collect();
        for &vline in &victims {
            self.begin_back_inval(vline, out);
        }
        victims.len() as u64
    }

    fn llc_class(&mut self, line: Line) -> LatClass {
        if self.llc.touch(line).is_some() {
            LatClass::Llc
        } else {
            // Fill the LLC tag; LLC evictions are silent (the LLC is not an
            // inclusion point — the directory is).
            let _ = self.llc.insert(line, (), |_| false);
            LatClass::Mem
        }
    }

    fn class_extra(&self, class: LatClass) -> Cycle {
        match class {
            LatClass::Mem => self.mem_lat,
            LatClass::Llc => self.llc_lat,
            _ => 0,
        }
    }

    fn complete_txn(&mut self, line: Line, out: &mut Vec<DirAction>) {
        let dir_lat = self.dir_lat;
        let e = self.entries.peek_mut(line).expect("txn on absent entry");
        let txn = e.busy.take().expect("complete without txn");
        debug_assert_eq!(txn.awaiting, 0);
        if txn.free_after {
            // Parked requests restart from scratch via Redispatch; their
            // park stamps are dropped, so park attribution undercounts
            // across inclusion evictions (rare, and an undercount only).
            let parked = std::mem::take(&mut e.parked);
            self.entries.remove(line);
            for (req, _) in parked {
                out.push(DirAction::Redispatch(req));
            }
            return;
        }
        if let Some((req, class, park)) = txn.grant {
            match req.kind {
                DirReqKind::GetX => {
                    e.excl = Some(req.from);
                    e.sharers = bit(req.from);
                    e.busy = Some(Txn::unblock_of(req.from));
                    self.bump_write_epoch(line);
                    out.push(DirAction::ToL1 {
                        core: req.from,
                        msg: L1Msg::GrantX { line, class, park },
                        extra: dir_lat + self.class_extra(class),
                    });
                }
                DirReqKind::GetS => {
                    let others = e.sharers & !bit(req.from);
                    if others == 0 {
                        e.excl = Some(req.from);
                        e.sharers = bit(req.from);
                        e.busy = Some(Txn::unblock_of(req.from));
                        self.bump_write_epoch(line);
                        out.push(DirAction::ToL1 {
                            core: req.from,
                            msg: L1Msg::GrantX { line, class, park },
                            extra: dir_lat + self.class_extra(class),
                        });
                    } else {
                        e.excl = None;
                        e.sharers |= bit(req.from);
                        e.busy = Some(Txn::unblock_of(req.from));
                        out.push(DirAction::ToL1 {
                            core: req.from,
                            msg: L1Msg::GrantS { line, class, park },
                            extra: dir_lat + self.class_extra(class),
                        });
                    }
                }
            }
        } else {
            // Pure ack-collection transactions (none today outside
            // evictions) fall through to pumping.
            self.pump_parked(line, out);
        }
    }

    /// Sharer bitmask for `line` (tests and invariant checks).
    pub fn sharers(&self, line: Line) -> u64 {
        self.entries.peek(line).map(|e| e.sharers).unwrap_or(0)
    }

    /// Exclusive owner for `line`, if tracked.
    pub fn owner(&self, line: Line) -> Option<CoreId> {
        self.entries.peek(line).and_then(|e| e.excl)
    }

    /// True if the entry for `line` has a transaction in flight.
    pub fn is_busy(&self, line: Line) -> bool {
        self.entries.peek(line).map(|e| e.busy.is_some()).unwrap_or(false)
    }

    /// Number of resident directory entries.
    pub fn resident_entries(&self) -> usize {
        self.entries.len()
    }

    /// True if the directory tracks `line` at all.
    pub fn has_entry(&self, line: Line) -> bool {
        self.entries.peek(line).is_some()
    }

    /// True when `core` has a request polling for directory-entry
    /// allocation (an outstanding `dir-alloc` retry site). Pure read over
    /// the progress guard's attempt table — used by the cycle-accounting
    /// classifier, never by protocol logic.
    pub(crate) fn core_alloc_waiting(&self, core: CoreId) -> bool {
        self.alloc_guard.keys().any(|(c, _)| *c == core)
    }

    /// Lines whose entries have a transaction in flight, in deterministic
    /// set order (diagnostics).
    pub(crate) fn busy_lines(&self) -> impl Iterator<Item = Line> + '_ {
        self.entries.iter().filter(|(_, e)| e.busy.is_some()).map(|(l, _)| l)
    }

    /// Test-only: forcibly drops the entry for `line`, bypassing the
    /// protocol. Exists solely to prove the inclusion audit fires.
    #[cfg(test)]
    pub(crate) fn force_drop_entry(&mut self, line: Line) {
        self.entries.remove(line);
    }
}

/// Iterates the core ids set in `mask`.
fn cores_in(mask: u64) -> impl Iterator<Item = CoreId> {
    (0..64u16).filter(move |i| mask & (1 << i) != 0).map(CoreId)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> Directory {
        Directory::new(&MemConfig::tiny())
    }

    fn gets(c: u16, line: Line) -> DirMsg {
        DirMsg::Req(DirReq { from: CoreId(c), line, kind: DirReqKind::GetS })
    }

    fn getx(c: u16, line: Line) -> DirMsg {
        DirMsg::Req(DirReq { from: CoreId(c), line, kind: DirReqKind::GetX })
    }

    fn unblock(d: &mut Directory, c: u16, line: Line, out: &mut Vec<DirAction>) {
        d.handle(DirMsg::Unblock { from: CoreId(c), line }, out);
    }

    fn down_ack(c: u16, line: Line, had: bool) -> DirMsg {
        DirMsg::DownAck { from: CoreId(c), line, had_line: had }
    }

    fn grants_x(out: &[DirAction], core: u16, line: Line) -> bool {
        out.iter().any(|a| {
            matches!(a, DirAction::ToL1 { core: c, msg: L1Msg::GrantX { line: l, .. }, .. }
                if c.0 == core && *l == line)
        })
    }

    fn grants_s(out: &[DirAction], core: u16, line: Line) -> bool {
        out.iter().any(|a| {
            matches!(a, DirAction::ToL1 { core: c, msg: L1Msg::GrantS { line: l, .. }, .. }
                if c.0 == core && *l == line)
        })
    }

    #[test]
    fn first_gets_is_granted_exclusive_and_blocks_until_unblock() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(gets(0, 0x100), &mut out);
        assert!(grants_x(&out, 0, 0x100));
        assert_eq!(d.owner(0x100), Some(CoreId(0)));
        // A second request parks until the grantee unblocks.
        assert!(d.is_busy(0x100));
        out.clear();
        d.handle(gets(1, 0x100), &mut out);
        assert!(out.is_empty());
        unblock(&mut d, 0, 0x100, &mut out);
        // The parked GetS now triggers a downgrade of core 0.
        assert!(out.iter().any(|a| matches!(
            a,
            DirAction::ToL1 { core: CoreId(0), msg: L1Msg::Downgrade { .. }, .. }
        )));
    }

    #[test]
    fn second_gets_downgrades_owner_then_grants_shared() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(gets(0, 0x100), &mut out);
        unblock(&mut d, 0, 0x100, &mut out);
        out.clear();
        d.handle(gets(1, 0x100), &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            DirAction::ToL1 { core: CoreId(0), msg: L1Msg::Downgrade { .. }, .. }
        )));
        assert!(d.is_busy(0x100));
        out.clear();
        d.handle(down_ack(0, 0x100, true), &mut out);
        assert!(grants_s(&out, 1, 0x100));
        assert_eq!(d.owner(0x100), None);
        assert_eq!(d.sharers(0x100).count_ones(), 2);
        // Still busy until core 1 unblocks.
        assert!(d.is_busy(0x100));
        out.clear();
        unblock(&mut d, 1, 0x100, &mut out);
        assert!(!d.is_busy(0x100));
    }

    #[test]
    fn downack_without_copy_grants_exclusive() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(gets(0, 0x100), &mut out);
        unblock(&mut d, 0, 0x100, &mut out);
        d.handle(gets(1, 0x100), &mut out);
        out.clear();
        // Owner had silently evicted the line.
        d.handle(down_ack(0, 0x100, false), &mut out);
        assert!(grants_x(&out, 1, 0x100));
        assert_eq!(d.owner(0x100), Some(CoreId(1)));
    }

    #[test]
    fn getx_invalidates_sharers_before_granting() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(gets(0, 0x100), &mut out);
        unblock(&mut d, 0, 0x100, &mut out);
        d.handle(gets(1, 0x100), &mut out);
        d.handle(down_ack(0, 0x100, true), &mut out);
        unblock(&mut d, 1, 0x100, &mut out);
        out.clear();
        d.handle(getx(2, 0x100), &mut out);
        let invs: Vec<_> = out
            .iter()
            .filter(|a| matches!(a, DirAction::ToL1 { msg: L1Msg::Inv { .. }, .. }))
            .collect();
        assert_eq!(invs.len(), 2);
        assert!(!grants_x(&out, 2, 0x100), "must wait for acks");
        out.clear();
        d.handle(DirMsg::InvAck { from: CoreId(0), line: 0x100 }, &mut out);
        assert!(out.is_empty());
        d.handle(DirMsg::InvAck { from: CoreId(1), line: 0x100 }, &mut out);
        assert!(grants_x(&out, 2, 0x100));
        assert_eq!(d.owner(0x100), Some(CoreId(2)));
    }

    #[test]
    fn requests_to_busy_line_park_and_drain_in_order() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(gets(0, 0x100), &mut out);
        unblock(&mut d, 0, 0x100, &mut out);
        d.handle(getx(1, 0x100), &mut out); // busy: Inv to 0 outstanding
        d.handle(getx(2, 0x100), &mut out); // parks
        d.handle(gets(3, 0x100), &mut out); // parks
        out.clear();
        d.handle(DirMsg::InvAck { from: CoreId(0), line: 0x100 }, &mut out);
        // Grant to 1; the entry then waits for 1's unblock before serving 2.
        assert!(grants_x(&out, 1, 0x100));
        assert!(!out.iter().any(|a| matches!(a, DirAction::ToL1 { msg: L1Msg::Inv { .. }, .. })));
        out.clear();
        unblock(&mut d, 1, 0x100, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            DirAction::ToL1 { core: CoreId(1), msg: L1Msg::Inv { .. }, .. }
        )));
        out.clear();
        d.handle(DirMsg::InvAck { from: CoreId(1), line: 0x100 }, &mut out);
        assert!(grants_x(&out, 2, 0x100));
        out.clear();
        unblock(&mut d, 2, 0x100, &mut out);
        // Parked GetS from 3 now triggers a downgrade of 2.
        assert!(out.iter().any(|a| matches!(
            a,
            DirAction::ToL1 { core: CoreId(2), msg: L1Msg::Downgrade { .. }, .. }
        )));
    }

    #[test]
    fn inclusion_eviction_back_invalidates_and_redispatches() {
        let mut cfg = MemConfig::tiny();
        cfg.dir_sets = 1;
        cfg.dir_ways = 2;
        let mut d = Directory::new(&cfg);
        let mut out = Vec::new();
        d.handle(gets(0, 0x000), &mut out);
        unblock(&mut d, 0, 0x000, &mut out);
        d.handle(gets(1, 0x040), &mut out);
        unblock(&mut d, 1, 0x040, &mut out);
        out.clear();
        // Third distinct line: full set, both entries held -> back-inval.
        d.handle(gets(2, 0x080), &mut out);
        let inv = out.iter().find_map(|a| match a {
            DirAction::ToL1 { core, msg: L1Msg::Inv { line }, .. } => Some((*core, *line)),
            _ => None,
        });
        let (victim_core, victim_line) = inv.expect("expected a back-invalidation");
        assert!(out.iter().all(|a| !matches!(
            a,
            DirAction::ToL1 { msg: L1Msg::GrantS { .. } | L1Msg::GrantX { .. }, .. }
        )));
        // The request polls via Redispatch until the eviction completes.
        let redis = out.iter().find_map(|a| match a {
            DirAction::Redispatch(r) => Some(*r),
            _ => None,
        });
        let req = redis.expect("expected redispatch");
        out.clear();
        d.handle(DirMsg::InvAck { from: victim_core, line: victim_line }, &mut out);
        out.clear();
        d.handle(DirMsg::Req(req), &mut out);
        assert!(grants_x(&out, 2, 0x080));
    }

    #[test]
    fn llc_miss_then_hit_classes() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(gets(0, 0x100), &mut out);
        let first_class = out.iter().find_map(|a| match a {
            DirAction::ToL1 { msg: L1Msg::GrantX { class, .. }, .. } => Some(*class),
            _ => None,
        });
        assert_eq!(first_class, Some(LatClass::Mem));
    }

    #[test]
    fn cores_in_enumerates_mask() {
        let got: Vec<u16> = cores_in(0b1011).map(|c| c.0).collect();
        assert_eq!(got, vec![0, 1, 3]);
    }

    /// Builds a 1-set/1-way directory where core 0 holds line 0x000 and an
    /// eviction of it is in flight (InvAck withheld), then polls `getx(1,
    /// 0x040)` until the starvation valve promotes it to a rescue.
    fn starved_dir() -> (Directory, Vec<DirAction>) {
        let mut cfg = MemConfig::tiny();
        cfg.dir_sets = 1;
        cfg.dir_ways = 1;
        let mut d = Directory::new(&cfg);
        let mut out = Vec::new();
        d.handle(gets(0, 0x000), &mut out);
        unblock(&mut d, 0, 0x000, &mut out);
        for _ in 0..ALLOC_RESCUE_THRESHOLD {
            out.clear();
            d.handle(getx(1, 0x040), &mut out);
        }
        assert_eq!(d.stat_alloc_rescues, 1, "starvation threshold promotes a rescue");
        (d, out)
    }

    #[test]
    fn starved_allocation_is_rescued_with_a_reserved_way() {
        let (mut d, mut out) = starved_dir();
        // Complete the eviction; a competing request may not claim the
        // freed way while the reservation is pending.
        d.handle(DirMsg::InvAck { from: CoreId(0), line: 0x000 }, &mut out);
        out.clear();
        d.handle(getx(2, 0x080), &mut out);
        assert!(!grants_x(&out, 2, 0x080), "reserved way leaked to a competitor");
        assert!(out.iter().any(|a| matches!(a, DirAction::Redispatch(_))));
        out.clear();
        d.handle(getx(1, 0x040), &mut out);
        assert!(grants_x(&out, 1, 0x040), "rescued request gets the reserved way");
    }

    #[test]
    fn abandoned_rescue_reservation_is_dropped() {
        let (mut d, mut out) = starved_dir();
        d.handle(DirMsg::InvAck { from: CoreId(0), line: 0x000 }, &mut out);
        // The rescued request never retries; a competitor's polls
        // eventually clear the stale reservation and allocate.
        let mut granted = false;
        for _ in 0..=ALLOC_RESCUE_ABANDON + 1 {
            out.clear();
            d.handle(getx(2, 0x080), &mut out);
            if grants_x(&out, 2, 0x080) {
                granted = true;
                break;
            }
        }
        assert!(granted, "stale reservation wedged the set");
    }
}
