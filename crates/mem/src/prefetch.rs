//! L1D stride prefetcher (Table 1: "stride prefetcher" after Baer).

use crate::Line;
use fa_isa::LINE_BYTES;

const TABLE_SIZE: usize = 16;

#[derive(Clone, Copy, Debug, Default)]
struct Stream {
    valid: bool,
    region: u64,
    last: Line,
    stride: i64,
    confidence: u8,
}

/// Detects constant-stride miss streams and proposes prefetch lines.
///
/// Streams are tracked per 64-line region; two consecutive identical deltas
/// arm the stream, after which each access proposes `degree` lines ahead.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: [Stream; TABLE_SIZE],
    degree: usize,
}

impl StridePrefetcher {
    /// Creates a prefetcher proposing `degree` lines ahead.
    pub fn new(degree: usize) -> StridePrefetcher {
        StridePrefetcher { table: [Stream::default(); TABLE_SIZE], degree }
    }

    /// Observes a demand miss for `line`; returns lines to prefetch.
    pub fn on_miss(&mut self, line: Line) -> Vec<Line> {
        let region = line >> (6 + fa_isa::LINE_SHIFT); // 64-line regions
        let slot = (region as usize) % TABLE_SIZE;
        let s = &mut self.table[slot];
        let mut out = Vec::new();
        if s.valid && s.region == region {
            let delta = line as i64 - s.last as i64;
            if delta == s.stride && delta != 0 {
                s.confidence = s.confidence.saturating_add(1);
            } else {
                s.stride = delta;
                s.confidence = 0;
            }
            s.last = line;
            if s.confidence >= 1 && s.stride != 0 {
                for k in 1..=self.degree as i64 {
                    let target = line as i64 + s.stride * k;
                    if target >= 0 {
                        out.push(target as Line);
                    }
                }
            }
        } else {
            *s = Stream { valid: true, region, last: line, stride: 0, confidence: 0 };
        }
        out
    }
}

/// Helper: the `n`-th next sequential line.
pub fn next_line(line: Line, n: u64) -> Line {
    line + n * LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unit_stride_after_training() {
        let mut p = StridePrefetcher::new(2);
        assert!(p.on_miss(0).is_empty()); // allocate
        assert!(p.on_miss(64).is_empty()); // learn stride
        let out = p.on_miss(128); // confirm
        assert_eq!(out, vec![192, 256]);
    }

    #[test]
    fn detects_negative_stride() {
        let mut p = StridePrefetcher::new(1);
        p.on_miss(640);
        p.on_miss(576);
        let out = p.on_miss(512);
        assert_eq!(out, vec![448]);
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut p = StridePrefetcher::new(2);
        p.on_miss(0);
        p.on_miss(64);
        p.on_miss(320);
        assert!(p.on_miss(128).is_empty()); // stride broken, retraining
    }

    #[test]
    fn next_line_steps_by_line_bytes() {
        assert_eq!(next_line(0, 3), 192);
    }
}
