#!/usr/bin/env sh
# Local CI gate: build, full test suite, lints, a seeded fuzz smoke
# campaign, and a timed mini-sweep. Everything is offline and
# deterministic; a clean exit here is the bar for merging.
set -eux

cargo build --release
# Wall-clock budget on the full suite: the conformance/checker layer must
# not let CI creep — fail loudly the moment the suite crosses 900s.
t0=$(date +%s)
cargo test --workspace -q
t1=$(date +%s)
test $((t1 - t0)) -le 900 || {
    echo "FAIL: test suite took $((t1 - t0))s, budget is 900s" >&2
    exit 1
}
cargo clippy --workspace --all-targets -- -D warnings
# Differential litmus fuzzing under fault injection (seeded — replayable).
FA_FUZZ_CASES=100 FA_FUZZ_SEED=193459 cargo run -q -p fa-bench --bin fuzz
# Timed mini-sweep on the parallel engine: 2 kernels x 2 policies, writing
# the BENCH_sweep.json throughput report, then sanity-check its shape.
FA_CORES=2 FA_SCALE=0.05 FA_RUNS=2 FA_DROP=0 \
    FA_WORKLOADS=TATP,PC FA_POLICIES=baseline,FreeAtomics+Fwd \
    FA_PRESETS=tiny FA_BENCH_JSON=target/BENCH_sweep.json \
    cargo run -q --release -p fa-bench --bin sweep
grep -q '"schema": "fa-sweep-v1"' target/BENCH_sweep.json
grep -c '"kernel":' target/BENCH_sweep.json | grep -qx 4
# Every row must carry the latency-histogram block.
grep -c '"hists":{"atomic_exec":' target/BENCH_sweep.json | grep -qx 4
# ... and the cycle-accounting block (the report bin's input).
grep -c '"cpi":{"core_cycles":' target/BENCH_sweep.json | grep -qx 4
# CPI-stack driver smoke: the fig-14 grid rendered as top-down cycle
# accounting, writing its own artifact with the cpi blocks.
FA_CORES=2 FA_SCALE=0.05 FA_RUNS=2 FA_DROP=0 FA_WORKLOADS=TATP,PC \
    FA_BENCH_JSON=target/BENCH_cpistack.json \
    cargo run -q --release -p fa-bench --bin cpistack > target/cpistack.txt
grep -q '"cpi":{"core_cycles":' target/BENCH_cpistack.json
grep -q 'atomic-lifetime attribution' target/cpistack.txt
# Differential bottleneck report smoke 1 — passivity: a report diffed
# against itself is clean and exits 0.
FA_REPORT_BASELINE=target/BENCH_sweep.json \
    ./target/release/report target/BENCH_sweep.json > target/report_self.txt
grep -q 'verdict: OK' target/report_self.txt
# Report smoke 2 — deliberate regression: inflate one taxonomy leaf of one
# row by 10% of its total cycles; the diff must name the leaf and exit 2.
python3 - <<'EOF'
import re
lines = open("target/BENCH_sweep.json").read().splitlines(True)
out, done = [], False
for ln in lines:
    if not done and '"cpi":{"core_cycles":' in ln:
        total = int(re.search(r'"core_cycles":(\d+)', ln).group(1))
        bump = max(total // 10, 200)
        ln = re.sub(r'("rob_full":)(\d+)',
                    lambda m: m.group(1) + str(int(m.group(2)) + bump), ln, count=1)
        done = True
    out.append(ln)
assert done, "no cpi row found to inflate"
open("target/BENCH_sweep_regressed.json", "w").writelines(out)
EOF
rc=0
FA_REPORT_BASELINE=target/BENCH_sweep.json \
    ./target/release/report target/BENCH_sweep_regressed.json \
    > target/report_regressed.txt || rc=$?
test "$rc" -eq 2
grep -q 'leaf rob_full:' target/report_regressed.txt
grep -q 'verdict: REGRESSED' target/report_regressed.txt
# Axiomatic TSO conformance smoke: 2 kernels x {baseline, free-atomics} x
# {ideal, contended} x {chaos off, on}, full-execution checker armed on
# every run. The bin exits nonzero on any violation; the grep keeps the
# gate loud even if its exit-code plumbing ever regresses.
FA_CORES=2 FA_SCALE=0.05 FA_WORKLOADS=TATP,PC \
    cargo run -q --release -p fa-bench --bin conformance > target/conformance.txt
grep -q 'violations: 0, other failures: 0' target/conformance.txt
# Checker-transparency gate: the same mini-sweep with FA_CHECK=tso must
# reproduce the FA_CHECK=off golden rows bit-for-bit, modulo the appended
# "checked" marker — which must be present on every row.
FA_CORES=2 FA_SCALE=0.05 FA_RUNS=2 FA_DROP=0 \
    FA_WORKLOADS=TATP,PC FA_POLICIES=baseline,FreeAtomics+Fwd \
    FA_PRESETS=tiny FA_BENCH_JSON=target/BENCH_sweep_checked.json FA_CHECK=tso \
    cargo run -q --release -p fa-bench --bin sweep
grep -c ',"checked":true' target/BENCH_sweep_checked.json | grep -qx 4
grep '"kernel":' target/BENCH_sweep_checked.json | sed 's/,"checked":true//' \
    > target/sweep_rows_checked.txt
grep '"kernel":' target/BENCH_sweep.json > target/sweep_rows_off.txt
diff target/sweep_rows_checked.txt target/sweep_rows_off.txt
# Model-transparency gate: FA_MODEL=tso must reproduce the default rows
# bit-for-bit (no tag, no drift) — the weak-memory frontend is passive on
# TSO — while FA_MODEL=weak must tag every row with the model marker.
FA_CORES=2 FA_SCALE=0.05 FA_RUNS=2 FA_DROP=0 \
    FA_WORKLOADS=TATP,PC FA_POLICIES=baseline,FreeAtomics+Fwd \
    FA_PRESETS=tiny FA_BENCH_JSON=target/BENCH_sweep_tso.json FA_MODEL=tso \
    ./target/release/sweep
grep '"kernel":' target/BENCH_sweep_tso.json > target/sweep_rows_tso.txt
diff target/sweep_rows_tso.txt target/sweep_rows_off.txt
FA_CORES=2 FA_SCALE=0.05 FA_RUNS=2 FA_DROP=0 \
    FA_WORKLOADS=TATP,PC FA_POLICIES=baseline,FreeAtomics+Fwd \
    FA_PRESETS=tiny FA_BENCH_JSON=target/BENCH_sweep_weak.json FA_MODEL=weak \
    ./target/release/sweep
grep -c ',"model":"weak"' target/BENCH_sweep_weak.json | grep -qx 4
# Weak-model conformance smoke: the same full-execution grid on the
# acquire/release-native machine, validated against the parameterized
# weak axioms (and the memlog litmus suite already ran under
# `cargo test` above).
FA_CORES=2 FA_SCALE=0.05 FA_WORKLOADS=TATP,PC FA_MODEL=weak \
    cargo run -q --release -p fa-bench --bin conformance > target/conformance_weak.txt
grep -q 'violations: 0, other failures: 0' target/conformance_weak.txt
# Weak-baseline figure smoke: TSO + weak grids, residual-speedup table.
FA_CORES=2 FA_SCALE=0.05 FA_RUNS=2 FA_DROP=0 FA_WORKLOADS=TATP,PC \
    FA_BENCH_JSON=target/BENCH_weak_baseline.json \
    cargo run -q --release -p fa-bench --bin fig_weak_baseline \
    > target/weak_baseline.txt
grep -q 'residual' target/weak_baseline.txt
grep -q ',"model":"weak"' target/BENCH_weak_baseline.json
# Network-sensitivity smoke: ideal vs contended crossbar on one kernel.
# Contended rows must carry the per-link `net` stats block.
FA_CORES=2 FA_SCALE=0.05 FA_RUNS=2 FA_DROP=0 FA_WORKLOADS=PC \
    FA_PRESETS=tiny FA_BENCH_JSON=target/BENCH_fig16.json \
    cargo run -q --release -p fa-bench --bin fig16_network_sensitivity
grep -q '"schema": "fa-sweep-v1"' target/BENCH_fig16.json
grep -q '"net":{"policy":"contended"' target/BENCH_fig16.json
grep -q '"queue_hist":\[' target/BENCH_fig16.json
grep -q '"req_util":\[' target/BENCH_fig16.json
# Supervision smoke 1 — wedged cell: an impossible 200-cycle budget must
# quarantine every cell (structured failure in the report's quarantine
# block) while the campaign itself completes and exits 2, not 1, not 0.
rc=0
FA_CORES=2 FA_SCALE=0.05 FA_RUNS=2 FA_DROP=0 \
    FA_WORKLOADS=TATP,PC FA_POLICIES=baseline,FreeAtomics+Fwd \
    FA_PRESETS=tiny FA_CELL_BUDGET=200 FA_RETRIES=0 \
    FA_BENCH_JSON=target/BENCH_sweep_wedged.json \
    ./target/release/sweep || rc=$?
test "$rc" -eq 2
grep -q '"quarantine"' target/BENCH_sweep_wedged.json
grep -q 'did not quiesce within 200 cycles' target/BENCH_sweep_wedged.json
# Supervision smoke 2 — kill/resume: SIGKILL a checkpointed campaign,
# resume it from the journal, and require the resumed report's rows to be
# byte-identical to the uninterrupted golden (wherever the kill landed).
rm -f target/sweep.ckpt
FA_CORES=2 FA_SCALE=0.05 FA_RUNS=2 FA_DROP=0 \
    FA_WORKLOADS=TATP,PC FA_POLICIES=baseline,FreeAtomics+Fwd \
    FA_PRESETS=tiny FA_CHECKPOINT=target/sweep.ckpt \
    FA_BENCH_JSON=target/BENCH_sweep_killed.json \
    ./target/release/sweep & spid=$!
sleep 0.05
kill -9 "$spid" 2>/dev/null || true
wait "$spid" || true
FA_CORES=2 FA_SCALE=0.05 FA_RUNS=2 FA_DROP=0 \
    FA_WORKLOADS=TATP,PC FA_POLICIES=baseline,FreeAtomics+Fwd \
    FA_PRESETS=tiny FA_CHECKPOINT=target/sweep.ckpt \
    FA_BENCH_JSON=target/BENCH_sweep_resumed.json \
    ./target/release/sweep
grep '"kernel":' target/BENCH_sweep_resumed.json > target/sweep_rows_resumed.txt
diff target/sweep_rows_resumed.txt target/sweep_rows_off.txt
# Trace-layer smoke: a full-mode run must export non-empty, loadable
# Chrome-trace/Perfetto JSON (the bin self-validates structure; the
# python check proves it is real JSON to an external parser too).
FA_TRACE=full:target/fa_trace.json \
    cargo run -q --release -p fa-bench --bin trace
grep -q '"traceEvents"' target/fa_trace.json
python3 -c 'import json,sys; d=json.load(open("target/fa_trace.json")); sys.exit(0 if len(d["traceEvents"]) > 2 else 1)'
# Flight-recorder smoke: a deliberately injected audit violation must
# surface the structured event tail on the error path.
cargo run -q --release -p fa-bench --bin trace -- --flight-demo > target/flight_demo.txt
grep -q 'flight recorder tail' target/flight_demo.txt
grep -q '"name":"uop.dispatch"' target/flight_demo.txt
