#!/usr/bin/env sh
# Local CI gate: build, full test suite, lints, and a seeded fuzz smoke
# campaign. Everything is offline and deterministic; a clean exit here is
# the bar for merging.
set -eux

cargo build --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
# Differential litmus fuzzing under fault injection (seeded — replayable).
FA_FUZZ_CASES=100 FA_FUZZ_SEED=193459 cargo run -q -p fa-bench --bin fuzz
